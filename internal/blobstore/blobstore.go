// Package blobstore is the shared blob namespace behind the cluster:
// one Store interface over content-addressed blobs, with backends for
// a local directory (wrapping the runner's on-disk cache and trace
// layout), an in-memory map, and an HTTP fan that reads through peer
// daemons before giving up.
//
// Keys are the runner's content-addressed job keys ("s1-<sha256>", see
// internal/runner.Job.Key), which makes every entry location
// independent: a result or trace blob computed by one daemon is valid
// on every other daemon that derives the same key, so pointing two
// pools at one Store — or fanning reads across peers — turns their
// private caches into a single shared namespace. Namespaces separate
// the two blob kinds that exist today (gob-encoded results, CRC-framed
// trace blobs); a key is unique within its namespace.
//
// Integrity is the payload's own concern, exactly as it is for the
// local tiers the store replaces: trace blobs carry a magic and
// checksum (internal/trace), gob results fail to decode when damaged.
// Every backend returns whatever bytes it finds, and the caller's
// decode step turns damage into a miss that falls back to computing.
package blobstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
)

// The blob namespaces used by the runner's cache tiers.
const (
	// NSResult holds gob-encoded job results (the disk tier of the
	// runner's result cache).
	NSResult = "result"
	// NSTrace holds CRC-framed reference-trace blobs (the runner's
	// trace store).
	NSTrace = "trace"
)

// ErrNotExist is the miss sentinel: Get and Stat return it (possibly
// wrapped) when the namespace holds no blob under the key.
var ErrNotExist = errors.New("blobstore: blob does not exist")

// Info describes one stored blob.
type Info struct {
	Key  string `json:"key"`
	Size int64  `json:"size"`
}

// Store is a content-addressed blob store. Values under a key are
// immutable — writers storing different bytes under one key is a
// caller bug — so Put of an existing key is idempotent and concurrent
// Puts of the same key may race freely: any winner is correct.
//
// Get and Stat report misses as ErrNotExist (test with errors.Is);
// any other error is a backend failure callers should treat as a miss
// when the store is an optimization tier.
//
// List returns up to limit blobs with keys strictly greater than
// after, in ascending key order — the cursor protocol: pass the last
// key of one page as the next call's after. limit <= 0 means no limit.
type Store interface {
	Get(ns, key string) ([]byte, error)
	Put(ns, key string, b []byte) error
	Stat(ns, key string) (Info, error)
	List(ns, after string, limit int) ([]Info, error)
}

// Reader is random access over one blob: what a chunk-granular
// consumer (the trace streamer) needs to read 64KB sections on demand
// instead of materializing the whole blob. Implementations must allow
// concurrent ReadAt calls (os.File and bytes.Reader both do).
type Reader interface {
	io.ReaderAt
	io.Closer
	Size() int64
}

// Streamer is the optional Store extension for chunk-granular reads.
// Backends that can serve sections without buffering the whole blob
// (the local directory's files) implement it; OpenReader falls back to
// Get for the rest.
type Streamer interface {
	GetReader(ns, key string) (Reader, error)
}

// OpenReader opens a blob for random access: through the backend's
// Streamer implementation when it has one, else by materializing Get's
// bytes once. Misses are ErrNotExist either way.
func OpenReader(s Store, ns, key string) (Reader, error) {
	if st, ok := s.(Streamer); ok {
		return st.GetReader(ns, key)
	}
	b, err := s.Get(ns, key)
	if err != nil {
		return nil, err
	}
	return bytesReader{bytes.NewReader(b)}, nil
}

// bytesReader adapts an in-memory blob to the Reader interface.
type bytesReader struct{ *bytes.Reader }

func (bytesReader) Close() error { return nil }

// CheckKey validates a key for use as a file name and URL path
// segment: ASCII letters, digits, '.', '_', '-', not starting with a
// dot (no "..", no hidden files), at most 128 bytes. The runner's
// "s<version>-<hex>" keys pass; anything that could traverse paths or
// confuse an HTTP route does not.
func CheckKey(key string) error {
	if key == "" || len(key) > 128 {
		return fmt.Errorf("blobstore: bad key %q: want 1..128 bytes", key)
	}
	if key[0] == '.' {
		return fmt.Errorf("blobstore: bad key %q: leading dot", key)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("blobstore: bad key %q: byte %q", key, c)
		}
	}
	return nil
}

// CheckNS validates a namespace name: 1..32 lowercase letters.
func CheckNS(ns string) error {
	if ns == "" || len(ns) > 32 {
		return fmt.Errorf("blobstore: bad namespace %q", ns)
	}
	for i := 0; i < len(ns); i++ {
		if c := ns[i]; c < 'a' || c > 'z' {
			return fmt.Errorf("blobstore: bad namespace %q", ns)
		}
	}
	return nil
}
