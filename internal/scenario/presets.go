package scenario

// The named experiments as data. Every entry of the CLI/daemon
// experiment list is a preset: one or more scenario specs plus the
// rendering identity (name, one-line description). The experiments
// package interprets these specs through the generic sweep/cold/warm
// machinery; the per-figure prose stays in its renderer, but the
// machines, query lists, sweep axes, and point lists live here.

// The paper's sweep point lists.
var (
	// LineSizes is the secondary-cache line-size sweep of Figures 8-9;
	// the primary line is always half.
	LineSizes = []int{16, 32, 64, 128, 256}
	// CacheSizesKB is the secondary-cache size sweep of Figures 10-11,
	// in KB; the primary stays 1/32 of the secondary.
	CacheSizesKB = []int{128, 256, 512, 1024, 2048, 4096, 8192}
	// PrefetchDegrees is the prefetch-depth ablation (the paper fixes 4).
	PrefetchDegrees = []int{1, 2, 4, 8, 16}
	// WriteBufferDepths is the write-buffer ablation (the paper fixes 16).
	WriteBufferDepths = []int{1, 2, 4, 8, 16, 32}
)

// Preset is one named experiment: its spec(s) plus display metadata.
type Preset struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Scenarios are the preset's specs. Most presets are one spec;
	// composite ones (the ablation trio, the warm-cache pairs, the
	// topology comparison) carry several, rendered in order.
	Scenarios []Scenario `json:"scenarios"`
	// QueriesFixed marks presets whose query lists are part of the
	// experiment's definition (the ablations run on Q6/Q3, Figure 12 on
	// Q3/Q12, ...): the CLI's -queries selection does not apply to them.
	QueriesFixed bool `json:"queries_fixed"`
}

// named returns the default scenario carrying a preset-local name.
func named(name string) Scenario {
	sc := Default()
	sc.Name = name
	return sc
}

func withQueries(sc Scenario, qs ...string) Scenario {
	sc.Workload.Queries = qs
	return sc
}

func withSweep(sc Scenario, axis string, points []int) Scenario {
	sc.Sweep = Sweep{Axis: axis, Points: append([]int(nil), points...)}
	return sc
}

// bigCacheMachine is the Figure 12 / streams geometry: very large
// caches (1-MB primary, 32-MB secondary) to bound achievable reuse.
func bigCacheMachine() Machine {
	m := DefaultMachine()
	m.L1Bytes = 1 << 20
	m.L2Bytes = 32 << 20
	return m
}

// warmPair is one Figure 12 scenario: target measured after warmer
// ("" = cold) on the big-cache machine.
func warmPair(target, warmer string) Scenario {
	sc := named("fig12")
	sc.Machine = bigCacheMachine()
	sc.Workload.Queries = []string{target}
	sc.Workload.Warm = warmer
	return sc
}

// Presets returns every named experiment in `-exp all` order. The
// order is the published output contract (goldens diff against it);
// it front-loads the cheap table before the sweeps. The slice and its
// specs are freshly built on every call, so callers may mutate them.
func Presets() []Preset {
	busMachine := DefaultMachine()
	busMachine.SnoopingBus = true
	return []Preset{
		{
			Name:         "table1",
			Description:  "Table 1: operator matrix of the read-only TPC-D queries",
			Scenarios:    []Scenario{withQueries(named("table1"))},
			QueriesFixed: true,
		},
		{
			Name:        "fig6",
			Description: "Figure 6: cold-start execution-time breakdowns",
			Scenarios:   []Scenario{named("fig6")},
		},
		{
			Name:        "fig7",
			Description: "Figure 7: cache misses classified by data structure",
			Scenarios:   []Scenario{named("fig7")},
		},
		{
			Name:        "fig8",
			Description: "Figure 8: miss counts across the line-size sweep",
			Scenarios:   []Scenario{withSweep(named("fig8"), AxisLine, LineSizes)},
		},
		{
			Name:        "fig9",
			Description: "Figure 9: execution time across the line-size sweep",
			Scenarios:   []Scenario{withSweep(named("fig9"), AxisLine, LineSizes)},
		},
		{
			Name:        "fig10",
			Description: "Figure 10: miss counts across the cache-size sweep",
			Scenarios:   []Scenario{withSweep(named("fig10"), AxisCache, CacheSizesKB)},
		},
		{
			Name:        "fig11",
			Description: "Figure 11: execution time across the cache-size sweep",
			Scenarios:   []Scenario{withSweep(named("fig11"), AxisCache, CacheSizesKB)},
		},
		{
			Name:        "fig12",
			Description: "Figure 12: inter-query reuse with warmed large caches",
			Scenarios: []Scenario{
				warmPair("Q3", ""), warmPair("Q3", "Q3"), warmPair("Q3", "Q12"),
				warmPair("Q12", ""), warmPair("Q12", "Q12"), warmPair("Q12", "Q3"),
			},
			QueriesFixed: true,
		},
		{
			Name:         "update",
			Description:  "Extension: the update functions the paper declined to trace",
			Scenarios:    []Scenario{withQueries(named("update"), "Q6", "UF1", "UF2")},
			QueriesFixed: true,
		},
		{
			Name:        "ablations",
			Description: "Ablations: prefetch depth, write-buffer depth, directory contention",
			Scenarios: []Scenario{
				withSweep(withQueries(named("ablations"), "Q6"), AxisPrefetch,
					append([]int{0}, PrefetchDegrees...)),
				withSweep(withQueries(named("ablations"), "Q6"), AxisWriteBuf, WriteBufferDepths),
				withSweep(withQueries(named("ablations"), "Q3"), AxisContention, []int{6, 0}),
			},
			QueriesFixed: true,
		},
		{
			Name:         "intraquery",
			Description:  "Extension: intra-query parallelism on a partitioned Q6",
			Scenarios:    []Scenario{withQueries(named("intraquery"), "Q6")},
			QueriesFixed: true,
		},
		{
			Name:         "streams",
			Description:  "Extension: multi-round query streams on large caches",
			Scenarios:    []Scenario{func() Scenario { sc := named("streams"); sc.Machine = bigCacheMachine(); return sc }()},
			QueriesFixed: true,
		},
		{
			Name:        "topology",
			Description: "Extension: directory CC-NUMA vs bus-based snooping SMP",
			Scenarios: []Scenario{
				func() Scenario { sc := named("numa"); return sc }(),
				func() Scenario { sc := named("bus"); sc.Machine = busMachine; return sc }(),
			},
		},
		{
			Name:        "scorecard",
			Description: "Scorecard: the paper's headline claims graded against this run",
			Scenarios:   []Scenario{named("scorecard")},
		},
		{
			Name:        "fig13",
			Description: "Figure 13: sequential data prefetching vs the baseline",
			Scenarios:   []Scenario{withSweep(named("fig13"), AxisPrefetch, []int{0, 4})},
		},
		{
			Name:         "mixedstreams",
			Description:  "Extension: concurrent client streams mixing reads and updates per phase",
			Scenarios:    []Scenario{mixedStreams()},
			QueriesFixed: true,
		},
	}
}

// mixedStreams is the stream-workload preset: each processor is one
// client stream, and the phase sequence interleaves index (Q3, Q12)
// and sequential (Q6) reads with the UF1/UF2 update transactions,
// carrying cache state from phase to phase. Variants are 10*phase +
// stream so no two runs share predicates.
func mixedStreams() Scenario {
	sc := named("mixedstreams")
	run := func(q string, v uint64) []PhaseRun { return []PhaseRun{{Query: q, Variant: v}} }
	sc.Workload.Queries = nil
	sc.Workload.Phases = []Phase{
		// Phase 0: a cold sequential scan on every stream primes the
		// buffer pool and caches.
		{Flush: true, Runs: [][]PhaseRun{run("Q6", 0), run("Q6", 1), run("Q6", 2), run("Q6", 3)}},
		// Phase 1: index-heavy reads on the warmed state; stream 0 chains
		// two runs back to back.
		{Runs: [][]PhaseRun{
			{{Query: "Q3", Variant: 10}, {Query: "Q6", Variant: 14}},
			run("Q12", 11), run("Q3", 12), run("Q12", 13),
		}},
		// Phase 2: updates interleaved with reads — the serving mix the
		// one-shot workload shape could not express.
		{Runs: [][]PhaseRun{run("UF1", 20), run("UF2", 21), run("Q6", 22), run("Q3", 23)}},
		// Phase 3: the sequential scan again, now over updated tables and
		// update-disturbed caches.
		{Runs: [][]PhaseRun{run("Q6", 30), run("Q6", 31), run("Q6", 32), run("Q6", 33)}},
	}
	return sc
}

// PresetByName returns the preset named name.
func PresetByName(name string) (Preset, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}

// PresetNames returns every preset name in `-exp all` order.
func PresetNames() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
