package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// TestPresetRegistry checks the catalog: the published order, unique
// names, descriptions, and that every preset spec validates.
func TestPresetRegistry(t *testing.T) {
	want := []string{
		"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"update", "ablations", "intraquery", "streams", "topology",
		"scorecard", "fig13", "mixedstreams",
	}
	if got := PresetNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("preset order = %v\nwant %v", got, want)
	}
	seen := map[string]bool{}
	for _, p := range Presets() {
		if seen[p.Name] {
			t.Errorf("duplicate preset %q", p.Name)
		}
		seen[p.Name] = true
		if p.Description == "" {
			t.Errorf("preset %q has no description", p.Name)
		}
		if len(p.Scenarios) == 0 {
			t.Errorf("preset %q has no scenarios", p.Name)
		}
		for i, sc := range p.Scenarios {
			if err := sc.Validate(); err != nil {
				t.Errorf("preset %q scenario %d invalid: %v", p.Name, i, err)
			}
		}
	}
}

// TestPresetByName checks lookup, including the miss path.
func TestPresetByName(t *testing.T) {
	p, ok := PresetByName("fig8")
	if !ok || p.Name != "fig8" {
		t.Fatalf("fig8 lookup = %+v, %v", p, ok)
	}
	sw := p.Scenarios[0].Sweep
	if sw.Axis != AxisLine || !reflect.DeepEqual(sw.Points, LineSizes) {
		t.Errorf("fig8 sweep = %+v, want the paper's line sizes", sw)
	}
	if _, ok := PresetByName("fig99"); ok {
		t.Error("unknown preset resolved")
	}
}

// TestPresetSpecsMatchPaper pins the preset data against the paper's
// experiment definitions.
func TestPresetSpecsMatchPaper(t *testing.T) {
	fig12, _ := PresetByName("fig12")
	if len(fig12.Scenarios) != 6 {
		t.Fatalf("fig12 has %d scenarios, want 6 warm pairs", len(fig12.Scenarios))
	}
	for _, sc := range fig12.Scenarios {
		if sc.Machine.L1Bytes != 1<<20 || sc.Machine.L2Bytes != 32<<20 {
			t.Errorf("fig12 caches = %d/%d, want 1MB/32MB", sc.Machine.L1Bytes, sc.Machine.L2Bytes)
		}
	}
	cold := fig12.Scenarios[0]
	if !reflect.DeepEqual(cold.Workload.Queries, []string{"Q3"}) || cold.Workload.Warm != "" {
		t.Errorf("fig12 first pair = %v<-%q, want cold Q3", cold.Workload.Queries, cold.Workload.Warm)
	}

	abl, _ := PresetByName("ablations")
	if len(abl.Scenarios) != 3 {
		t.Fatalf("ablations has %d scenarios, want prefetch/writebuf/contention", len(abl.Scenarios))
	}
	if ax := abl.Scenarios[0].Sweep; ax.Axis != AxisPrefetch ||
		!reflect.DeepEqual(ax.Points, append([]int{0}, PrefetchDegrees...)) {
		t.Errorf("prefetch ablation sweep = %+v", ax)
	}
	if ax := abl.Scenarios[1].Sweep; ax.Axis != AxisWriteBuf ||
		!reflect.DeepEqual(ax.Points, WriteBufferDepths) {
		t.Errorf("write-buffer ablation sweep = %+v", ax)
	}
	if ax := abl.Scenarios[2].Sweep; ax.Axis != AxisContention {
		t.Errorf("contention ablation sweep = %+v", ax)
	}

	top, _ := PresetByName("topology")
	if len(top.Scenarios) != 2 || top.Scenarios[0].Machine.SnoopingBus ||
		!top.Scenarios[1].Machine.SnoopingBus {
		t.Errorf("topology scenarios = %+v, want numa then bus", top.Scenarios)
	}

	fig13, _ := PresetByName("fig13")
	if sw := fig13.Scenarios[0].Sweep; sw.Axis != AxisPrefetch || !reflect.DeepEqual(sw.Points, []int{0, 4}) {
		t.Errorf("fig13 sweep = %+v, want prefetch off vs degree 4", sw)
	}
}

// TestPresetHashGenerations pins the hash-compatibility contract of
// the stream refactor: every pre-stream preset spec still hashes under
// the legacy "s1-" generation (its cache keys and trace blobs survive
// bit for bit), and only the stream preset moved to "s2-".
func TestPresetHashGenerations(t *testing.T) {
	for _, p := range Presets() {
		want := "s1-"
		if p.Name == "mixedstreams" {
			want = "s2-"
		}
		for i, sc := range p.Scenarios {
			if h := sc.Hash(); !strings.HasPrefix(h, want) {
				t.Errorf("preset %q scenario %d hash %s, want prefix %s", p.Name, i, h, want)
			}
			if p.Name != "mixedstreams" && strings.Contains(string(sc.Canonical()), "phases") {
				t.Errorf("preset %q scenario %d canonical encoding mentions phases", p.Name, i)
			}
		}
	}
}

// TestMixedStreamsPreset pins the stream preset's shape: four phases,
// a flushed warm-up, interleaved UF1/UF2 updates, and a multi-run
// processor list.
func TestMixedStreamsPreset(t *testing.T) {
	p, ok := PresetByName("mixedstreams")
	if !ok || !p.QueriesFixed {
		t.Fatalf("mixedstreams lookup = %+v, %v (want QueriesFixed)", p, ok)
	}
	sc := p.Scenarios[0]
	ph := sc.Workload.Phases
	if len(ph) != 4 || !ph[0].Flush || ph[1].Flush || ph[2].Flush || ph[3].Flush {
		t.Fatalf("phases = %+v, want 4 with only the first flushed", ph)
	}
	if len(sc.Workload.Queries) != 0 || sc.Workload.Warm != "" {
		t.Errorf("stream preset still carries legacy fields: %+v", sc.Workload)
	}
	if len(ph[1].Runs[0]) != 2 {
		t.Errorf("phase 1 stream 0 = %+v, want a two-run chain", ph[1].Runs[0])
	}
	if ph[2].Runs[0][0].Query != "UF1" || ph[2].Runs[1][0].Query != "UF2" {
		t.Errorf("phase 2 = %+v, want UF1/UF2 leading", ph[2].Runs)
	}
}

// TestPresetsAreCopies checks that mutating a returned preset cannot
// corrupt the registry.
func TestPresetsAreCopies(t *testing.T) {
	p, _ := PresetByName("fig8")
	p.Scenarios[0].Sweep.Points[0] = 9999
	p.Scenarios[0].Machine.Processors = 1
	fresh, _ := PresetByName("fig8")
	if fresh.Scenarios[0].Sweep.Points[0] != LineSizes[0] || fresh.Scenarios[0].Machine.Processors != 4 {
		t.Error("preset mutation leaked into the registry")
	}
}
