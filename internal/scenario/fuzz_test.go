package scenario

import (
	"bytes"
	"testing"
)

// FuzzScenarioDecode fuzzes the spec parser end to end:
// decode -> validate -> canonicalize -> re-decode must either fail
// cleanly at the first two stages or round-trip exactly — and never
// panic. This is the safety contract for POST /v1/scenarios, which
// feeds attacker-controlled bytes into this exact pipeline.
func FuzzScenarioDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name": "mine", "machine": {"processors": 3, "l2_line": 256, "l1_line": 128}}`))
	f.Add([]byte(`{"workload": {"queries": ["Q6"], "scale": 0.001}, "sweep": {"axis": "line", "points": [16, 256]}}`))
	f.Add([]byte(`{"machine": {"dir_occupancy": 0, "snooping_bus": true}}`))
	f.Add([]byte(`{"workload": {"warm": "Q3"}}`))
	f.Add([]byte(`{"sweep": {"axis": "cache", "points": [128, 8192]}}`))
	f.Add([]byte(`{"machine": {"l1_bytes": 0}}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"machine": {"processors": -1}} trailing`))
	// Stream-shaped seeds: valid phases, nil/empty idle lists, legacy
	// conflicts, over-bounds shapes, and unknown stream queries.
	f.Add([]byte(`{"workload": {"phases": [{"flush": true, "runs": [[{"query": "Q6", "variant": 1}]]}]}}`))
	f.Add([]byte(`{"workload": {"phases": [
		{"flush": true, "runs": [[{"query": "Q6"}], []]},
		{"runs": [null, [{"query": "UF1"}, {"query": "Q3", "variant": 7}]]}
	]}}`))
	f.Add([]byte(`{"workload": {"queries": ["Q6"], "phases": [{"runs": [[{"query": "Q3"}]]}]}}`))
	f.Add([]byte(`{"workload": {"warm": "Q6", "phases": [{"runs": [[{"query": "Q3"}]]}]}}`))
	f.Add([]byte(`{"workload": {"phases": [{"runs": [[], null]}]}}`))
	f.Add([]byte(`{"workload": {"phases": [{"runs": [[{"query": "Q99", "variant": 2}]]}]}}`))
	f.Add([]byte(`{"machine": {"processors": 1}, "workload": {"phases": [{"runs": [[{"query": "Q6"}], [{"query": "Q3"}]]}]}}`))
	f.Add([]byte(`{"workload": {"phases": []}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		sc, err := Decode(data)
		if err != nil {
			return // clean rejection
		}
		if err := sc.Validate(); err != nil {
			if _, ok := err.(*FieldError); !ok {
				t.Fatalf("validation error %T is not a FieldError: %v", err, err)
			}
			return // clean rejection with a field path
		}
		c1 := sc.Canonical()
		re, err := Decode(c1)
		if err != nil {
			t.Fatalf("canonical bytes of a valid spec do not decode: %v\n%s", err, c1)
		}
		if err := re.Validate(); err != nil {
			t.Fatalf("canonical re-decode of a valid spec fails validation: %v\n%s", err, c1)
		}
		c2 := re.Canonical()
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonicalization is not a fixed point:\n%s\n%s", c1, c2)
		}
		if sc.Hash() != re.Hash() {
			t.Fatal("round-tripped spec hashes differently")
		}
		if sc.Generation() != re.Generation() {
			t.Fatal("round-tripped spec changed format generation")
		}
		// The legacy→stream mapping always yields a valid stream spec
		// on the spec's own machine: lowering can never re-reject what
		// validation accepted.
		if len(sc.Workload.Phases) == 0 && len(sc.Workload.Queries) > 0 {
			mapped := *sc
			mapped.Workload.Phases = LegacyPhases(sc.Workload.Queries[0], sc.Workload.Warm, sc.Machine.Processors)
			mapped.Workload.Queries = nil
			mapped.Workload.Warm = ""
			mapped.Sweep = Sweep{} // streams replay per configuration, never sweep
			if err := mapped.Validate(); err != nil {
				t.Fatalf("LegacyPhases of a valid spec does not validate: %v", err)
			}
			if mapped.Generation() != StreamFormatVersion {
				t.Fatal("mapped legacy spec is not stream-generation")
			}
		}
	})
}
