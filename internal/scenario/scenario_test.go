package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
)

// TestDefaultsFillEmptySpec checks the decode-over-defaults contract:
// an empty spec is exactly today's baseline run.
func TestDefaultsFillEmptySpec(t *testing.T) {
	sc, err := Decode([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("empty spec does not validate: %v", err)
	}
	if got := sc.Machine.MachineConfig(); got != machine.Baseline() {
		t.Errorf("empty spec machine = %+v, want the baseline", got)
	}
	if got := sc.Machine.SchedConfig(); got != sched.DefaultConfig() {
		t.Errorf("empty spec sched = %+v, want the default cost model", got)
	}
	w := sc.Workload
	if w.Scale != 0.01 || w.Seed != 12345 || !reflect.DeepEqual(w.Queries, []string{"Q3", "Q6", "Q12"}) {
		t.Errorf("empty spec workload = %+v, want the paper's defaults", w)
	}
	if sc.Sweep.Axis != "" || len(sc.Sweep.Points) != 0 {
		t.Errorf("empty spec has a sweep: %+v", sc.Sweep)
	}
}

// TestPartialDecode checks that present fields override defaults —
// including explicit zeros — while absent ones keep them.
func TestPartialDecode(t *testing.T) {
	sc, err := Decode([]byte(`{
		"machine": {"processors": 3, "dir_occupancy": 0},
		"workload": {"queries": ["Q6"], "scale": 0.001}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Machine.Processors != 3 {
		t.Errorf("processors = %d, want 3", sc.Machine.Processors)
	}
	if sc.Machine.DirOccupancy != 0 {
		t.Errorf("explicit dir_occupancy: 0 did not override the default")
	}
	if sc.Machine.L2Line != 64 || sc.Machine.WriteBufEntries != 16 {
		t.Errorf("absent machine fields lost their defaults: %+v", sc.Machine)
	}
	if !reflect.DeepEqual(sc.Workload.Queries, []string{"Q6"}) || sc.Workload.Scale != 0.001 {
		t.Errorf("workload overrides not applied: %+v", sc.Workload)
	}
	if sc.Workload.Seed != 12345 {
		t.Errorf("absent seed lost its default: %d", sc.Workload.Seed)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeErrors checks the parser's rejection paths.
func TestDecodeErrors(t *testing.T) {
	for name, in := range map[string]string{
		"unknown field": `{"machine": {"cores": 4}}`,
		"type mismatch": `{"machine": {"processors": "four"}}`,
		"trailing data": `{} {"machine": {}}`,
		"not an object": `[1, 2]`,
		// replay_workers is execution policy (runner.Config /
		// -replay-workers), never spec vocabulary: replay output is
		// byte-identical at any worker count, so admitting it here
		// would pollute cache keys with a non-semantic knob.
		"replay_workers top level":   `{"replay_workers": 4}`,
		"replay_workers in machine":  `{"machine": {"replay_workers": 4}}`,
		"replay_workers in workload": `{"workload": {"replay_workers": 4}}`,
	} {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

// TestValidationErrors is the field-path table: every malformed spec
// reports the JSON path of the offending field.
func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
		path string
	}{
		{"bad line size", `{"machine": {"l2_line": 100, "l1_line": 50}}`, "machine.l1_line"},
		{"non-pow2 l2 line", `{"machine": {"l2_line": 96}}`, "machine.l2_line"},
		{"zero processors", `{"machine": {"processors": 0}}`, "machine.processors"},
		{"unknown query", `{"workload": {"queries": ["Q3", "Q99"]}}`, "workload.queries[1]"},
		{"unknown warmer", `{"workload": {"warm": "Q99"}}`, "workload.warm"},
		{"bad scale", `{"workload": {"scale": -0.5}}`, "workload.scale"},
		{"empty sweep points", `{"sweep": {"axis": "line"}}`, "sweep.points"},
		{"unknown axis", `{"sweep": {"axis": "voltage", "points": [1]}}`, "sweep.axis"},
		{"points without axis", `{"sweep": {"points": [64]}}`, "sweep.axis"},
		{"invalid swept machine", `{"sweep": {"axis": "writebuf", "points": [8, 0]}}`, "sweep.points[1]"},
		{"huge cache point", `{"sweep": {"axis": "cache", "points": [2097152]}}`, "sweep.points[0]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc, err := Decode([]byte(c.spec))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			err = sc.Validate()
			if err == nil {
				t.Fatalf("spec %s validated", c.spec)
			}
			fe, ok := err.(*FieldError)
			if !ok {
				t.Fatalf("error %T is not a FieldError: %v", err, err)
			}
			if !strings.HasPrefix(fe.Path, c.path) {
				t.Errorf("error path %q, want prefix %q (msg: %s)", fe.Path, c.path, fe.Msg)
			}
		})
	}
}

// TestCanonicalAndHash checks the content address: field order and the
// Name label do not matter, every semantic field does, and the hash
// carries the format-version prefix.
func TestCanonicalAndHash(t *testing.T) {
	a, err := Decode([]byte(`{"workload": {"scale": 0.005, "queries": ["Q6"]}, "machine": {"l2_line": 128, "l1_line": 64}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode([]byte(`{"name": "mine", "machine": {"l1_line": 64, "l2_line": 128}, "workload": {"queries": ["Q6"], "scale": 0.005}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Errorf("field order / name perturbed the canonical encoding:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	if a.Hash() != b.Hash() {
		t.Error("equivalent specs hash differently")
	}
	if !strings.HasPrefix(a.Hash(), "s1-") {
		t.Errorf("hash %q lacks the s1- format-version prefix", a.Hash())
	}

	perturb := map[string]func(*Scenario){
		"machine":  func(s *Scenario) { s.Machine.L2Ways = 4 },
		"sched":    func(s *Scenario) { s.Machine.BusyPerAccess = 5 },
		"queries":  func(s *Scenario) { s.Workload.Queries = []string{"Q3"} },
		"scale":    func(s *Scenario) { s.Workload.Scale = 0.004 },
		"seed":     func(s *Scenario) { s.Workload.Seed = 7 },
		"warm":     func(s *Scenario) { s.Workload.Warm = "Q6" },
		"heap":     func(s *Scenario) { s.Workload.PrivateHeapBytes = 64 << 20 },
		"axis":     func(s *Scenario) { s.Sweep = Sweep{Axis: AxisLine, Points: []int{64}} },
		"points":   func(s *Scenario) { s.Sweep = Sweep{Axis: AxisLine, Points: []int{64, 128}} },
		"costmodel": func(s *Scenario) { s.Workload.TupleBusy = 1 },
	}
	for field, mutate := range perturb {
		sc := Default()
		mutate(&sc)
		base := Default()
		if sc.Hash() == base.Hash() {
			t.Errorf("changing %s does not change the hash", field)
		}
	}

	// The canonical bytes must themselves decode to the same spec.
	re, err := Decode(a.Canonical())
	if err != nil {
		t.Fatalf("canonical bytes do not decode: %v", err)
	}
	if !bytes.Equal(re.Canonical(), a.Canonical()) {
		t.Error("canonicalization does not round-trip")
	}
}

// TestStreamDecode checks the stream-workload decode contract: phases
// replace the defaulted query list, explicitly given legacy fields
// conflict, and the canonical encoding round-trips under the "s2-"
// generation.
func TestStreamDecode(t *testing.T) {
	sc, err := Decode([]byte(`{"workload": {"phases": [
		{"flush": true, "runs": [[{"query": "Q6", "variant": 1}], []]},
		{"runs": [null, [{"query": "UF1"}, {"query": "Q3", "variant": 7}]]}
	]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("stream spec does not validate: %v", err)
	}
	if len(sc.Workload.Queries) != 0 || sc.Workload.Warm != "" {
		t.Errorf("defaulted legacy fields survived a stream decode: %+v", sc.Workload)
	}
	if g := sc.Generation(); g != StreamFormatVersion {
		t.Errorf("generation = %d, want %d", g, StreamFormatVersion)
	}
	if !strings.HasPrefix(sc.Hash(), "s2-") {
		t.Errorf("stream hash %q lacks the s2- prefix", sc.Hash())
	}
	if ph := sc.Workload.Phases; len(ph) != 2 || !ph[0].Flush || ph[1].Flush ||
		ph[1].Runs[1][1].Variant != 7 {
		t.Errorf("phases decoded wrong: %+v", sc.Workload.Phases)
	}

	// nil and empty run lists mean the same idle processor, so they
	// canonicalize (and therefore hash) identically.
	other := *sc
	other.Workload.Phases = append([]Phase(nil), sc.Workload.Phases...)
	other.Workload.Phases[1].Runs = [][]PhaseRun{{}, sc.Workload.Phases[1].Runs[1]}
	if sc.Hash() != other.Hash() {
		t.Error("nil vs empty idle run list perturbs the hash")
	}

	// Canonical bytes decode back to an equivalent spec (fixed point).
	re, err := Decode(sc.Canonical())
	if err != nil {
		t.Fatalf("canonical stream bytes do not decode: %v", err)
	}
	if !bytes.Equal(re.Canonical(), sc.Canonical()) {
		t.Error("stream canonicalization does not round-trip")
	}
	if err := re.Validate(); err != nil {
		t.Errorf("re-decoded stream spec invalid: %v", err)
	}

	// A legacy spec keeps its legacy generation and never mentions
	// phases in its canonical bytes.
	base := Default()
	if g := base.Generation(); g != FormatVersion {
		t.Errorf("legacy generation = %d, want %d", g, FormatVersion)
	}
	if strings.Contains(string(base.Canonical()), "phases") {
		t.Errorf("legacy canonical encoding mentions phases: %s", base.Canonical())
	}
}

// TestStreamValidation is the phase-shaped slice of the field-path
// table.
func TestStreamValidation(t *testing.T) {
	run := `[{"query": "Q6"}]`
	cases := []struct {
		name string
		spec string
		path string
	}{
		{"phases with queries", `{"workload": {"queries": ["Q6"], "phases": [{"runs": [` + run + `]}]}}`,
			"workload.queries"},
		{"phases with warm", `{"workload": {"warm": "Q6", "phases": [{"runs": [` + run + `]}]}}`,
			"workload.warm"},
		{"empty phase", `{"workload": {"phases": [{"runs": [[], []]}]}}`,
			"workload.phases[0].runs"},
		{"too many run lists", `{"machine": {"processors": 1}, "workload": {"phases": [{"runs": [` + run + `, ` + run + `]}]}}`,
			"workload.phases[0].runs"},
		{"unknown stream query", `{"workload": {"phases": [{"runs": [[{"query": "Q99"}]]}]}}`,
			"workload.phases[0].runs[0][0].query"},
		{"swept stream", `{"workload": {"phases": [{"runs": [` + run + `]}]}, "sweep": {"axis": "line", "points": [64]}}`,
			"sweep.axis"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc, err := Decode([]byte(c.spec))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			err = sc.Validate()
			if err == nil {
				t.Fatalf("spec %s validated", c.spec)
			}
			fe, ok := err.(*FieldError)
			if !ok {
				t.Fatalf("error %T is not a FieldError: %v", err, err)
			}
			if !strings.HasPrefix(fe.Path, c.path) {
				t.Errorf("error path %q, want prefix %q (msg: %s)", fe.Path, c.path, fe.Msg)
			}
		})
	}
}

// TestLegacyPhases checks the lossless legacy→stream mapping: warm
// specs become a flushed warm-up plus an unflushed measured phase,
// cold specs a single flushed phase, with the variant convention the
// hand-written experiments used (warm-up i, measured 100+i).
func TestLegacyPhases(t *testing.T) {
	cold := LegacyPhases("Q3", "", 2)
	if len(cold) != 1 || !cold[0].Flush {
		t.Fatalf("cold mapping = %+v, want one flushed phase", cold)
	}
	if r := cold[0].Runs[1]; len(r) != 1 || r[0].Query != "Q3" || r[0].Variant != 101 {
		t.Errorf("cold proc 1 = %+v, want Q3 variant 101", r)
	}

	warm := LegacyPhases("Q3", "Q12", 2)
	if len(warm) != 2 || !warm[0].Flush || warm[1].Flush {
		t.Fatalf("warm mapping = %+v, want flushed warm-up then unflushed measure", warm)
	}
	if r := warm[0].Runs[1]; r[0].Query != "Q12" || r[0].Variant != 1 {
		t.Errorf("warm-up proc 1 = %+v, want Q12 variant 1", r)
	}
	if r := warm[1].Runs[0]; r[0].Query != "Q3" || r[0].Variant != 100 {
		t.Errorf("measured proc 0 = %+v, want Q3 variant 100", r)
	}

	// The mapped form is a valid stream spec on the matching machine.
	sc := Default()
	sc.Workload.Queries = nil
	sc.Workload.Phases = LegacyPhases("Q3", "Q12", sc.Machine.Processors)
	if err := sc.Validate(); err != nil {
		t.Errorf("mapped legacy spec invalid: %v", err)
	}
}

// TestApplyAxis checks every sweep axis against the hand-written
// experiment transformations it replaces.
func TestApplyAxis(t *testing.T) {
	base := DefaultMachine()

	m := ApplyAxis(AxisLine, base, 256)
	if m.L2Line != 256 || m.L1Line != 128 {
		t.Errorf("line: L2/L1 = %d/%d, want 256/128", m.L2Line, m.L1Line)
	}
	if base.MachineConfig().WithLineSize(256) != m.MachineConfig() {
		t.Error("line axis diverges from machine.WithLineSize")
	}

	m = ApplyAxis(AxisCache, base, 1024)
	if base.MachineConfig().WithCacheSizes(1024*1024/32, 1024*1024) != m.MachineConfig() {
		t.Error("cache axis diverges from machine.WithCacheSizes")
	}

	m = ApplyAxis(AxisPrefetch, base, 8)
	if !m.PrefetchData || m.PrefetchDegree != 8 {
		t.Errorf("prefetch 8: data=%v degree=%d", m.PrefetchData, m.PrefetchDegree)
	}
	m = ApplyAxis(AxisPrefetch, m, 0)
	if m.PrefetchData {
		t.Error("prefetch 0 did not turn data prefetching off")
	}

	if m = ApplyAxis(AxisWriteBuf, base, 32); m.WriteBufEntries != 32 {
		t.Errorf("writebuf: %d entries, want 32", m.WriteBufEntries)
	}
	if m = ApplyAxis(AxisContention, base, 0); m.DirOccupancy != 0 {
		t.Errorf("contention: occupancy %d, want 0", m.DirOccupancy)
	}
}

// TestMachineConfigRoundTrip checks the machine.Config lift/lower pair.
func TestMachineConfigRoundTrip(t *testing.T) {
	cfg := machine.Baseline()
	cfg.Nodes = 7
	cfg.SnoopingBus = true
	cfg.PrefetchData = true
	if got := FromMachineConfig(cfg).MachineConfig(); got != cfg {
		t.Errorf("round trip = %+v, want %+v", got, cfg)
	}
}
