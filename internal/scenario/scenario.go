// Package scenario is the declarative spec layer: one validated,
// canonicalizable description of a full run — the simulated machine,
// the workload on it, and an optional one-axis parameter sweep. The
// paper's whole methodology is "vary one machine parameter, re-run the
// same queries, attribute the misses"; a Scenario captures exactly that
// variation as data, so every named experiment is a preset spec (see
// presets.go), arbitrary specs arrive over HTTP or from -scenario
// files, and the runner's cache keys derive from the spec's canonical
// hash instead of from code-side job plumbing.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/tpcd"
)

// FormatVersion is the spec-format generation of the legacy
// Queries+Warm workload shape. It prefixes every canonical hash (and
// therefore every runner cache key and trace-store filename) as
// "s<version>-", so a format change can never silently replay a blob
// recorded under older semantics: old entries simply miss. Bump it
// whenever the meaning of an existing field changes or a new field
// alters how identical-looking specs execute.
const FormatVersion = 1

// StreamFormatVersion is the spec-format generation of workloads that
// carry an explicit phase sequence (Workload.Phases). Stream specs
// execute through the phase executor — different semantics than the
// one-query-list shape — so they hash under their own generation
// ("s2-...") while legacy specs keep their "s1-..." hashes bit for
// bit; see (*Scenario).Generation.
const StreamFormatVersion = 2

// Machine describes the simulated hardware plus the processor
// front-end cost model — everything core needs to build the
// machine.Config and sched.Config of a run. Field semantics follow
// machine.Config; see that package for the paper's definitions.
type Machine struct {
	Processors int `json:"processors"`

	L1Bytes int `json:"l1_bytes"`
	L1Line  int `json:"l1_line"`
	L2Bytes int `json:"l2_bytes"`
	L2Line  int `json:"l2_line"`
	L2Ways  int `json:"l2_ways"`

	WriteBufEntries int `json:"write_buf_entries"`

	L2HitLat   int64 `json:"l2_hit_lat"`
	LocalMem   int64 `json:"local_mem"`
	Remote2Hop int64 `json:"remote2_hop"`
	Remote3Hop int64 `json:"remote3_hop"`

	DirOccupancy    int64 `json:"dir_occupancy"`
	TransferPerWord int64 `json:"transfer_per_word"`

	PrefetchData   bool `json:"prefetch_data"`
	PrefetchDegree int  `json:"prefetch_degree"`

	SnoopingBus bool  `json:"snooping_bus"`
	BusLat      int64 `json:"bus_lat"`

	// Front-end cost model (sched.Config): busy cycles per traced
	// reference and the spin-iteration cost on a held metalock.
	BusyPerAccess int64 `json:"busy_per_access"`
	SpinBackoff   int64 `json:"spin_backoff"`
}

// Workload describes what runs on the machine: the traced queries, the
// database scale and seed, whether the caches are pre-warmed, and the
// storage-layer layout and executor cost-model knobs.
type Workload struct {
	// Queries are the traced queries, one instance per processor each.
	Queries []string `json:"queries"`
	// Scale is the TPC-D scale factor (the paper uses 0.01).
	Scale float64 `json:"scale"`
	// Seed drives database generation.
	Seed uint64 `json:"seed"`
	// Warm names a query that runs first to warm the caches; the
	// measured run then starts without flushing ("" = cold start, the
	// paper's default methodology).
	Warm string `json:"warm"`

	// Storage-layer layout parameters (core.Config).
	LockTableSlots   int    `json:"lock_table_slots"`
	PrivateHeapBytes uint64 `json:"private_heap_bytes"`

	// Per-tuple executor cost model (core.Config / executor.Ctx).
	OverheadTouches int   `json:"overhead_touches"`
	HotTouches      int   `json:"hot_touches"`
	TupleBusy       int64 `json:"tuple_busy"`
	IndexTupleBusy  int64 `json:"index_tuple_busy"`

	// Phases is the stream-workload shape: an ordered sequence of
	// phases, each an ordered per-processor list of query runs, with
	// cache/buffer state carried across phases. Mutually exclusive with
	// Queries/Warm — a workload is either the legacy one-shot shape or
	// an explicit stream. The omitempty keeps legacy canonical
	// encodings (and therefore every existing hash) byte-identical.
	Phases []Phase `json:"phases,omitempty"`
}

// PhaseRun is one query execution inside a phase: a query name (the 17
// read-only TPC-D queries or the UF1/UF2 update transactions) and the
// variant parameter that seeds its predicates.
type PhaseRun struct {
	Query   string `json:"query"`
	Variant uint64 `json:"variant"`
}

// Phase is one step of a stream workload. Runs is indexed by
// processor: Runs[i] is processor i's ordered run list for this phase
// (empty = idle); processors beyond len(Runs) idle. Flush flushes the
// caches and measurement state at the phase boundary (database
// contents persist); without it only the measurement counters reset,
// so the phase runs on whatever cache state the previous phases left —
// the warm-state semantics that make streams worth modeling.
type Phase struct {
	Flush bool         `json:"flush"`
	Runs  [][]PhaseRun `json:"runs"`
}

// Sweep varies one machine axis over a point list; the workload re-runs
// at every point. An empty Axis means no sweep.
type Sweep struct {
	Axis   string `json:"axis"`
	Points []int  `json:"points"`
}

// Scenario is the complete declarative spec of one run. Name is a
// label only (preset identity, display); it is excluded from the
// canonical encoding and the hash.
type Scenario struct {
	Name     string   `json:"name,omitempty"`
	Machine  Machine  `json:"machine"`
	Workload Workload `json:"workload"`
	Sweep    Sweep    `json:"sweep"`
}

// The sweep axes. Each maps a point value onto machine fields exactly
// the way the corresponding hand-written experiment did (ApplyAxis).
const (
	// AxisLine sweeps the secondary line size; the primary line is
	// always half (the paper's Figures 8-9 convention).
	AxisLine = "line"
	// AxisCache sweeps the secondary cache size in KB; the primary
	// stays 1/32 of it (Figures 10-11).
	AxisCache = "cache"
	// AxisPrefetch sweeps the sequential-prefetch degree; point 0
	// turns data prefetching off.
	AxisPrefetch = "prefetch"
	// AxisWriteBuf sweeps the coalescing write buffer depth.
	AxisWriteBuf = "writebuf"
	// AxisContention sweeps the directory occupancy (point 0 turns
	// directory contention off).
	AxisContention = "contention"
)

// Axes lists every valid sweep axis.
var Axes = []string{AxisLine, AxisCache, AxisPrefetch, AxisWriteBuf, AxisContention}

// ApplyAxis returns m with one sweep point applied along axis. Unknown
// axes return m unchanged; Validate rejects them before any caller can
// get here with one.
func ApplyAxis(axis string, m Machine, point int) Machine {
	switch axis {
	case AxisLine:
		m.L2Line = point
		m.L1Line = point / 2
	case AxisCache:
		m.L1Bytes = point * 1024 / 32
		m.L2Bytes = point * 1024
	case AxisPrefetch:
		if point == 0 {
			m.PrefetchData = false
		} else {
			m.PrefetchData = true
			m.PrefetchDegree = point
		}
	case AxisWriteBuf:
		m.WriteBufEntries = point
	case AxisContention:
		m.DirOccupancy = int64(point)
	}
	return m
}

// FromMachineConfig lifts a machine.Config into a spec Machine, taking
// the front-end cost model from the sched defaults.
func FromMachineConfig(c machine.Config) Machine {
	sc := sched.DefaultConfig()
	return Machine{
		Processors:      c.Nodes,
		L1Bytes:         c.L1Bytes,
		L1Line:          c.L1Line,
		L2Bytes:         c.L2Bytes,
		L2Line:          c.L2Line,
		L2Ways:          c.L2Ways,
		WriteBufEntries: c.WriteBufEntries,
		L2HitLat:        c.L2HitLat,
		LocalMem:        c.LocalMem,
		Remote2Hop:      c.Remote2Hop,
		Remote3Hop:      c.Remote3Hop,
		DirOccupancy:    c.DirOccupancy,
		TransferPerWord: c.TransferPerWord,
		PrefetchData:    c.PrefetchData,
		PrefetchDegree:  c.PrefetchDegree,
		SnoopingBus:     c.SnoopingBus,
		BusLat:          c.BusLat,
		BusyPerAccess:   sc.BusyPerAccess,
		SpinBackoff:     sc.SpinBackoff,
	}
}

// MachineConfig lowers the spec Machine to the machine package's
// configuration.
func (m Machine) MachineConfig() machine.Config {
	return machine.Config{
		Nodes:           m.Processors,
		L1Bytes:         m.L1Bytes,
		L1Line:          m.L1Line,
		L2Bytes:         m.L2Bytes,
		L2Line:          m.L2Line,
		L2Ways:          m.L2Ways,
		WriteBufEntries: m.WriteBufEntries,
		L2HitLat:        m.L2HitLat,
		LocalMem:        m.LocalMem,
		Remote2Hop:      m.Remote2Hop,
		Remote3Hop:      m.Remote3Hop,
		DirOccupancy:    m.DirOccupancy,
		TransferPerWord: m.TransferPerWord,
		PrefetchData:    m.PrefetchData,
		PrefetchDegree:  m.PrefetchDegree,
		SnoopingBus:     m.SnoopingBus,
		BusLat:          m.BusLat,
	}
}

// SchedConfig extracts the front-end cost model.
func (m Machine) SchedConfig() sched.Config {
	return sched.Config{BusyPerAccess: m.BusyPerAccess, SpinBackoff: m.SpinBackoff}
}

// DefaultMachine is the paper's baseline architecture as a spec.
func DefaultMachine() Machine { return FromMachineConfig(machine.Baseline()) }

// DefaultWorkload is the paper's workload: Q3/Q6/Q12 cold at scale
// 0.01, with the calibrated storage and executor cost model. The
// layout/cost literals mirror core.DefaultConfig (core depends on this
// package, so the values live here; core's tests pin the agreement).
func DefaultWorkload() Workload {
	db := tpcd.DefaultConfig()
	return Workload{
		Queries:          []string{"Q3", "Q6", "Q12"},
		Scale:            db.ScaleFactor,
		Seed:             db.Seed,
		LockTableSlots:   8192,
		PrivateHeapBytes: 96 << 20,
		OverheadTouches:  3,
		HotTouches:       40,
		TupleBusy:        650,
		IndexTupleBusy:   8000,
	}
}

// Default is the paper's baseline run: the baseline machine, the
// default workload, no sweep.
func Default() Scenario {
	return Scenario{Machine: DefaultMachine(), Workload: DefaultWorkload()}
}

// Decode parses a JSON spec over the defaults: absent fields keep their
// default values (so `{}` is exactly the baseline run), present fields
// override them — including explicit zeros, which is how a spec turns
// directory contention or the write-buffer model off. Unknown fields
// and trailing data are errors.
func Decode(data []byte) (*Scenario, error) {
	sc := Default()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("scenario: trailing data after the spec")
	}
	if len(sc.Workload.Phases) > 0 {
		// A stream workload replaces the default query list. The
		// defaults fill Queries even when the spec never mentioned it,
		// so distinguish "defaulted" from "explicitly given": only the
		// latter is a real conflict, which Validate reports.
		var probe struct {
			Workload struct {
				Queries *json.RawMessage `json:"queries"`
				Warm    *json.RawMessage `json:"warm"`
			} `json:"workload"`
		}
		// The spec already decoded, so this loose re-parse cannot fail.
		_ = json.Unmarshal(data, &probe)
		if probe.Workload.Queries == nil {
			sc.Workload.Queries = nil
		}
		if probe.Workload.Warm == nil {
			sc.Workload.Warm = ""
		}
	}
	return &sc, nil
}

// FieldError locates a validation failure by the JSON path of the
// offending field.
type FieldError struct {
	Path string
	Msg  string
}

func (e *FieldError) Error() string { return "scenario: " + e.Path + ": " + e.Msg }

func bad(path, format string, args ...interface{}) error {
	return &FieldError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Bounds. They exist for two reasons: a spec is accepted from the
// network (dssmemd POST /v1/scenarios), so a single request must not be
// able to demand an absurdly large simulation; and the per-point sweep
// application must stay far from integer overflow so validation itself
// can never trap.
const (
	maxLine      = 1 << 20 // 1 MB lines
	maxCacheB    = 1 << 30 // 1 GB caches
	maxWays      = 64
	maxLatency   = int64(1) << 32
	maxQueries   = 64
	maxPoints    = 64
	maxPointVal  = 1 << 20
	maxHeapBytes = uint64(4) << 30

	// Stream-workload bounds: phases per stream and runs per processor
	// per phase. Together with maxQueries-scale processor counts they
	// bound the total work one network-supplied spec can demand.
	maxPhases      = 32
	maxRunsPerProc = 8
)

// knownQuery reports whether q names a runnable workload: one of the
// 17 read-only TPC-D queries or the two update functions.
func knownQuery(q string) bool {
	for _, n := range tpcd.QueryNames {
		if n == q {
			return true
		}
	}
	return q == "UF1" || q == "UF2"
}

func pow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// validateMachine checks one machine spec, reporting errors under the
// given path prefix (the top-level machine uses "machine"; sweep
// validation re-checks each applied point under "sweep.points[i]").
func validateMachine(m Machine, prefix string) error {
	p := func(field string) string { return prefix + "." + field }
	switch {
	case m.Processors < 1 || m.Processors > 16:
		return bad(p("processors"), "%d processors, want 1..16", m.Processors)
	case m.L1Line < 8 || m.L1Line > maxLine || !pow2(m.L1Line):
		return bad(p("l1_line"), "%d not a power of two in 8..%d", m.L1Line, maxLine)
	case m.L2Line < m.L1Line || m.L2Line > maxLine || !pow2(m.L2Line):
		return bad(p("l2_line"), "%d not a power of two in %d..%d", m.L2Line, m.L1Line, maxLine)
	case m.L1Bytes < m.L1Line || m.L1Bytes > maxCacheB || m.L1Bytes%m.L1Line != 0:
		return bad(p("l1_bytes"), "%d not a multiple of the %d-byte line (max %d)", m.L1Bytes, m.L1Line, maxCacheB)
	case m.L2Ways < 1 || m.L2Ways > maxWays:
		return bad(p("l2_ways"), "%d ways, want 1..%d", m.L2Ways, maxWays)
	case m.L2Bytes < m.L2Line*m.L2Ways || m.L2Bytes > maxCacheB || m.L2Bytes%(m.L2Line*m.L2Ways) != 0:
		return bad(p("l2_bytes"), "%d not a multiple of %d-byte lines x %d ways (max %d)",
			m.L2Bytes, m.L2Line, m.L2Ways, maxCacheB)
	case m.WriteBufEntries < 1 || m.WriteBufEntries > 1<<16:
		return bad(p("write_buf_entries"), "%d entries, want 1..%d", m.WriteBufEntries, 1<<16)
	case m.PrefetchDegree < 1 || m.PrefetchDegree > maxWays:
		return bad(p("prefetch_degree"), "%d, want 1..%d", m.PrefetchDegree, maxWays)
	}
	for _, l := range []struct {
		field string
		v     int64
	}{
		{"l2_hit_lat", m.L2HitLat}, {"local_mem", m.LocalMem},
		{"remote2_hop", m.Remote2Hop}, {"remote3_hop", m.Remote3Hop},
		{"dir_occupancy", m.DirOccupancy}, {"transfer_per_word", m.TransferPerWord},
		{"bus_lat", m.BusLat}, {"busy_per_access", m.BusyPerAccess},
		{"spin_backoff", m.SpinBackoff},
	} {
		if l.v < 0 || l.v > maxLatency {
			return bad(p(l.field), "%d cycles, want 0..%d", l.v, maxLatency)
		}
	}
	return nil
}

func validWorkload(w Workload) error {
	switch {
	case !(w.Scale > 0) || w.Scale > 1:
		return bad("workload.scale", "%v, want a scale factor in (0, 1]", w.Scale)
	case len(w.Queries) > maxQueries:
		return bad("workload.queries", "%d queries, max %d", len(w.Queries), maxQueries)
	case w.LockTableSlots < 1 || w.LockTableSlots > 1<<20:
		return bad("workload.lock_table_slots", "%d, want 1..%d", w.LockTableSlots, 1<<20)
	case w.PrivateHeapBytes < 1<<16 || w.PrivateHeapBytes > maxHeapBytes:
		return bad("workload.private_heap_bytes", "%d, want %d..%d", w.PrivateHeapBytes, 1<<16, maxHeapBytes)
	case w.OverheadTouches < 0 || w.OverheadTouches > 1<<16:
		return bad("workload.overhead_touches", "%d, want 0..%d", w.OverheadTouches, 1<<16)
	case w.HotTouches < 0 || w.HotTouches > 1<<16:
		return bad("workload.hot_touches", "%d, want 0..%d", w.HotTouches, 1<<16)
	case w.TupleBusy < 0 || w.TupleBusy > maxLatency:
		return bad("workload.tuple_busy", "%d, want 0..%d", w.TupleBusy, maxLatency)
	case w.IndexTupleBusy < 0 || w.IndexTupleBusy > maxLatency:
		return bad("workload.index_tuple_busy", "%d, want 0..%d", w.IndexTupleBusy, maxLatency)
	}
	for i, q := range w.Queries {
		if !knownQuery(q) {
			return bad(fmt.Sprintf("workload.queries[%d]", i), "unknown query %q", q)
		}
	}
	if w.Warm != "" && !knownQuery(w.Warm) {
		return bad("workload.warm", "unknown query %q", w.Warm)
	}
	return nil
}

// validPhases checks the stream-workload shape against the machine's
// processor count. Phases are mutually exclusive with the legacy
// Queries/Warm fields: a workload is one shape or the other.
func validPhases(w Workload, procs int) error {
	if len(w.Phases) == 0 {
		return nil
	}
	switch {
	case len(w.Queries) > 0:
		return bad("workload.queries", "cannot combine a query list with phases")
	case w.Warm != "":
		return bad("workload.warm", "cannot combine a warm query with phases")
	case len(w.Phases) > maxPhases:
		return bad("workload.phases", "%d phases, max %d", len(w.Phases), maxPhases)
	}
	for i, ph := range w.Phases {
		if len(ph.Runs) > procs {
			return bad(fmt.Sprintf("workload.phases[%d].runs", i),
				"%d run lists for %d processors", len(ph.Runs), procs)
		}
		runs := 0
		for j, list := range ph.Runs {
			if len(list) > maxRunsPerProc {
				return bad(fmt.Sprintf("workload.phases[%d].runs[%d]", i, j),
					"%d runs on one processor, max %d", len(list), maxRunsPerProc)
			}
			for k, r := range list {
				if !knownQuery(r.Query) {
					return bad(fmt.Sprintf("workload.phases[%d].runs[%d][%d].query", i, j, k),
						"unknown query %q", r.Query)
				}
			}
			runs += len(list)
		}
		if runs == 0 {
			return bad(fmt.Sprintf("workload.phases[%d].runs", i), "phase runs nothing")
		}
	}
	return nil
}

func validAxis(axis string) bool {
	for _, a := range Axes {
		if a == axis {
			return true
		}
	}
	return false
}

// Validate checks the whole spec, including every machine the sweep
// would instantiate, and reports the first failure with its field path.
func (s *Scenario) Validate() error {
	if err := validateMachine(s.Machine, "machine"); err != nil {
		return err
	}
	if err := validWorkload(s.Workload); err != nil {
		return err
	}
	if err := validPhases(s.Workload, s.Machine.Processors); err != nil {
		return err
	}
	if len(s.Workload.Phases) > 0 && s.Sweep.Axis != "" {
		return bad("sweep.axis", "cannot sweep a stream workload; replay its capture per configuration instead")
	}
	sw := s.Sweep
	switch {
	case sw.Axis == "" && len(sw.Points) > 0:
		return bad("sweep.axis", "points given without an axis (valid axes: %v)", Axes)
	case sw.Axis != "" && !validAxis(sw.Axis):
		return bad("sweep.axis", "unknown axis %q (valid: %v)", sw.Axis, Axes)
	case sw.Axis != "" && len(sw.Points) == 0:
		return bad("sweep.points", "empty sweep points")
	case len(sw.Points) > maxPoints:
		return bad("sweep.points", "%d points, max %d", len(sw.Points), maxPoints)
	}
	for i, pt := range sw.Points {
		if pt < 0 || pt > maxPointVal {
			return bad(fmt.Sprintf("sweep.points[%d]", i), "%d, want 0..%d", pt, maxPointVal)
		}
		applied := ApplyAxis(sw.Axis, s.Machine, pt)
		if err := validateMachine(applied, fmt.Sprintf("sweep.points[%d]", i)); err != nil {
			return err
		}
	}
	return nil
}

// canonical is the hashed shape: every field, no omissions, no Name.
type canonical struct {
	Machine  Machine  `json:"machine"`
	Workload Workload `json:"workload"`
	Sweep    Sweep    `json:"sweep"`
}

// Canonical returns the spec's canonical encoding: deterministic JSON
// with every field present in struct order, nil slices normalized to
// empty, and the Name label excluded. Two specs describe the same run
// if and only if their canonical bytes are equal. The bytes re-decode
// to an equivalent spec, so canonicalization round-trips.
func (s *Scenario) Canonical() []byte {
	c := canonical{Machine: s.Machine, Workload: s.Workload, Sweep: s.Sweep}
	if c.Workload.Queries == nil {
		c.Workload.Queries = []string{}
	}
	if c.Sweep.Points == nil {
		c.Sweep.Points = []int{}
	}
	if len(c.Workload.Phases) > 0 {
		// Normalize the nested run slices on a copy (the phase slice is
		// shared with the caller): nil and empty mean the same idle
		// processor, so they must encode identically.
		phases := make([]Phase, len(c.Workload.Phases))
		for i, ph := range c.Workload.Phases {
			runs := make([][]PhaseRun, len(ph.Runs))
			for j, list := range ph.Runs {
				if list == nil {
					list = []PhaseRun{}
				}
				runs[j] = list
			}
			phases[i] = Phase{Flush: ph.Flush, Runs: runs}
		}
		c.Workload.Phases = phases
	}
	b, err := json.Marshal(c)
	if err != nil {
		// Marshal of a struct of scalars and slices cannot fail.
		panic(fmt.Sprintf("scenario: canonical encoding failed: %v", err))
	}
	return b
}

// Generation returns the spec-format generation this scenario hashes
// under: StreamFormatVersion for stream workloads (explicit phases),
// FormatVersion for the legacy Queries+Warm shape. Keeping the two
// shapes in separate generations means every pre-stream hash, cache
// key, and trace-store filename survives the refactor bit for bit.
func (s *Scenario) Generation() int {
	if len(s.Workload.Phases) > 0 {
		return StreamFormatVersion
	}
	return FormatVersion
}

// Hash returns the spec's stable content address, prefixed with the
// format generation ("s1-..." legacy, "s2-..." streams): equal
// canonical bytes hash equal forever within a format generation, and a
// version bump changes every hash.
func (s *Scenario) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return fmt.Sprintf("s%d-%x", s.Generation(), sum)
}

// LegacyPhases maps the legacy one-shot workload shape onto the
// explicit stream form: warm != "" becomes a flushed warm-up phase
// (one run of warm per processor, variant = processor index) followed
// by an unflushed measured phase; warm == "" is a single flushed
// phase. The measured runs use variant 100+i, matching what the
// hand-written experiments always passed, so lowering a legacy spec
// through the stream executor reproduces the old execution bit for
// bit.
func LegacyPhases(target, warm string, procs int) []Phase {
	measured := make([][]PhaseRun, procs)
	for i := range measured {
		measured[i] = []PhaseRun{{Query: target, Variant: uint64(100 + i)}}
	}
	if warm == "" {
		return []Phase{{Flush: true, Runs: measured}}
	}
	warming := make([][]PhaseRun, procs)
	for i := range warming {
		warming[i] = []PhaseRun{{Query: warm, Variant: uint64(i)}}
	}
	return []Phase{
		{Flush: true, Runs: warming},
		{Flush: false, Runs: measured},
	}
}
