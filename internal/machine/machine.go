package machine

import (
	"fmt"

	"repro/internal/simm"
	"repro/internal/stats"
)

// dirEntry is the full-bit-vector directory state of one secondary-cache
// line, stored at the line's home node.
type dirEntry struct {
	sharers  uint16 // nodes holding the line in their secondary cache
	owner    int8   // valid when modified
	modified bool
}

// wbEntry is one pending store in a node's coalescing write buffer.
type wbEntry struct {
	line uint64 // secondary-cache line address
	done int64  // cycle at which the drain completes
	cat  simm.Category
}

type node struct {
	l1 *l1Cache
	l2 *l2Cache
	wb []wbEntry
	// pfReady records when a prefetched primary line's data actually
	// arrives; a demand access before that stalls for the remainder.
	// It is empty unless prefetching is enabled, and the hot path gates
	// on its length before probing.
	pfReady *timeTab
	// pfQueue holds outstanding prefetches in issue order, backing
	// pfReady's expiry: a node is probed only by its own processor,
	// whose clock never decreases, so once now passes an entry's
	// arrival time the entry can never stall anyone again and can be
	// purged. This keeps pfReady at in-flight size (its probes stay in
	// the host's cache) and re-enables the L1 fast path between scans —
	// both charge-identical, since an arrived entry's probe outcome is
	// exactly an absent entry's.
	pfQueue []pfEntry
	pfHead  int
}

type pfEntry struct {
	line  uint64
	ready int64
}

// expirePrefetches purges prefetches that have arrived by now. Issue
// order is only approximately arrival order (fetch latency varies), so
// the scan stops at the first still-outstanding entry; stragglers
// behind it expire on a later call.
func (nd *node) expirePrefetches(now int64) {
	for nd.pfHead < len(nd.pfQueue) {
		e := nd.pfQueue[nd.pfHead]
		if e.ready > now {
			return
		}
		nd.pfHead++
		// Delete only if the table still holds this issue's arrival
		// time: a demand probe may have deleted the entry already, or a
		// re-prefetch superseded it.
		if v, ok := nd.pfReady.get(e.line); ok && v == e.ready {
			nd.pfReady.del(e.line)
		}
	}
	nd.pfQueue = nd.pfQueue[:0]
	nd.pfHead = 0
}

// AccessResult reports the outcome of one processor memory reference:
// how long the processor stalled and which data-structure category the
// reference touched (so the execution engine can attribute the stall).
type AccessResult struct {
	Stall int64
	Cat   simm.Category
}

// Machine is the simulated memory system. It is driven by the execution
// engine one reference at a time, in global timestamp order; it is not
// safe for concurrent use.
type Machine struct {
	cfg   Config
	mem   *simm.Memory
	nodes []*node
	dir   *dirTab
	// dirFreeAt models directory occupancy at each home node: requests
	// queue behind one another, which is where hot-spot contention
	// (e.g. on LockSLock's home) comes from. Under SnoopingBus,
	// dirFreeAt[0] doubles as the single bus's busy-until time.
	dirFreeAt []int64
	st        Stats

	// Line-size-dependent transfer adjustments (see Config.TransferPerWord).
	l1FillLat int64
	l2Extra   int64

	// sh marks this Machine value as one processor's speculative view
	// inside an epoch-parallel replay window (see shadow.go): directory
	// lookups read through a private overlay, occupancy reservations are
	// logged for merge validation, and remote-node mutations buffer as
	// intents. Always nil on the base machine, so the serial paths pay
	// one predictable nil check at each interception point.
	sh *Shadow

	// winScratch holds the reusable validation state of CommitWindow;
	// lazily allocated on the base machine, never on shadows.
	winScratch *commitScratch
}

// New builds a machine over the given simulated address space.
func New(cfg Config, mem *simm.Memory) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem.Nodes() != cfg.Nodes {
		return nil, fmt.Errorf("machine: memory built for %d nodes, config has %d", mem.Nodes(), cfg.Nodes)
	}
	m := &Machine{
		cfg:       cfg,
		mem:       mem,
		dir:       newDirTab(),
		dirFreeAt: make([]int64, cfg.Nodes),
	}
	m.l1FillLat = cfg.L2HitLat + int64(cfg.L1Line-32)/8*cfg.TransferPerWord
	if m.l1FillLat < 8 {
		m.l1FillLat = 8
	}
	m.l2Extra = int64(cfg.L2Line-64) / 8 * cfg.TransferPerWord
	if m.l2Extra < -40 {
		m.l2Extra = -40
	}
	for i := 0; i < cfg.Nodes; i++ {
		m.nodes = append(m.nodes, &node{
			l1:      newL1(cfg.L1Bytes, cfg.L1Line),
			l2:      newL2(cfg.L2Bytes, cfg.L2Line, cfg.L2Ways),
			pfReady: newTimeTab(),
		})
	}
	return m, nil
}

// NewReusing is New with allocation reuse from a retired machine over
// the same memory. When the configuration matches exactly, the donor
// itself is flushed back to a cold start and returned; otherwise a new
// machine adopts the donor's grown directory, prefetch tables, and
// (geometry permitting) cache arrays after resetting them. Either way
// the result is behaviorally identical to New: flush/reset restore the
// exact cold state every table starts from, they just keep capacity.
func NewReusing(cfg Config, mem *simm.Memory, donor *Machine) (*Machine, error) {
	if donor == nil || donor.mem != mem {
		return New(cfg, mem)
	}
	if donor.cfg == cfg {
		donor.Flush()
		donor.ResetStats()
		return donor, nil
	}
	m, err := New(cfg, mem)
	if err != nil {
		return nil, err
	}
	donor.dir.reset()
	m.dir = donor.dir
	if len(m.nodes) == len(donor.nodes) {
		for i, nd := range m.nodes {
			d := donor.nodes[i]
			d.pfReady.reset()
			nd.pfReady = d.pfReady
			if cfg.L1Bytes == donor.cfg.L1Bytes && cfg.L1Line == donor.cfg.L1Line {
				d.l1.flush()
				nd.l1 = d.l1
			}
			if cfg.L2Bytes == donor.cfg.L2Bytes && cfg.L2Line == donor.cfg.L2Line && cfg.L2Ways == donor.cfg.L2Ways {
				d.l2.flush()
				nd.l2 = d.l2
			}
		}
	}
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Stats returns the accumulated counters.
func (m *Machine) Stats() *Stats { return &m.st }

// ResetStats clears counters but preserves all cache, directory, and
// write-buffer state. The warm-cache experiments (Figure 12) measure the
// second query of a pair this way.
func (m *Machine) ResetStats() { m.st = Stats{} }

// Flush empties caches, write buffers, and the directory, and forgets
// miss-classification history, returning the machine to a cold start.
func (m *Machine) Flush() {
	for _, n := range m.nodes {
		n.l1.flush()
		n.l2.flush()
		n.wb = nil
		n.pfReady.reset()
		n.pfQueue = n.pfQueue[:0]
		n.pfHead = 0
	}
	m.dir.reset()
	for i := range m.dirFreeAt {
		m.dirFreeAt[i] = 0
	}
}

// entry returns the directory entry for line, inserting a zero entry on
// first touch. The pointer aliases the directory's backing array and is
// invalidated by the next entry call; callers must not hold it across
// one.
func (m *Machine) entry(line uint64) *dirEntry {
	if m.sh != nil {
		return m.sh.dirEntry(line)
	}
	return m.dir.entry(line)
}

// dirQueue charges directory occupancy at the home node and returns the
// queueing delay suffered.
func (m *Machine) dirQueue(home int, now int64) int64 {
	start := now
	if m.dirFreeAt[home] > start {
		start = m.dirFreeAt[home]
	}
	m.dirFreeAt[home] = start + m.cfg.DirOccupancy
	if m.sh != nil {
		// Shadow view: the delay was computed against a private copy of
		// the occupancy clocks. Log it so CommitWindow can re-derive the
		// delay from the merged cross-processor reservation order and
		// abort the window if interleaved reservations would have
		// changed it.
		m.sh.dirLog = append(m.sh.dirLog,
			dirTouch{home: int32(home), reserve: m.cfg.DirOccupancy,
				issue: m.sh.stepClock, now: now, delay: start - now})
	}
	return start - now
}

// invalidateOthers removes every copy of the line except node n's,
// marking the victims as coherence-invalidated.
func (m *Machine) invalidateOthers(n int, line uint64, e *dirEntry) {
	if m.sh != nil {
		// Shadow view: never touch another node's caches mid-window —
		// buffer the invalidation as an intent, applied (or vetoed) at
		// commit. The count is final either way: the serial run would
		// count one invalidation per sharer bit regardless of whether
		// the victim still caches the line.
		for q := 0; q < m.cfg.Nodes; q++ {
			if q == n || e.sharers&(1<<uint(q)) == 0 {
				continue
			}
			m.sh.intents = append(m.sh.intents, intent{target: int32(q), line: line, inval: true})
			m.st.Invalidations++
		}
		e.sharers &= 1 << uint(n)
		return
	}
	for q := 0; q < m.cfg.Nodes; q++ {
		if q == n || e.sharers&(1<<uint(q)) == 0 {
			continue
		}
		m.nodes[q].l2.invalidate(line)
		m.nodes[q].l1.invalidateRange(line, uint64(m.cfg.L2Line), absentInvalidated)
		m.st.Invalidations++
	}
	e.sharers &= 1 << uint(n)
}

// busQueue arbitrates for the single snooping bus: the transaction
// starts when the bus frees and occupies it for BusLat.
func (m *Machine) busQueue(now int64) int64 {
	start := now
	if m.dirFreeAt[0] > start {
		start = m.dirFreeAt[0]
	}
	m.dirFreeAt[0] = start + m.cfg.BusLat
	if m.sh != nil {
		m.sh.dirLog = append(m.sh.dirLog,
			dirTouch{home: 0, reserve: m.cfg.BusLat,
				issue: m.sh.stepClock, now: now, delay: start - now})
	}
	return start - now
}

// fetchLine performs the coherence transaction that brings a secondary
// line to node n (shared or exclusive) and returns the round-trip
// latency including interconnect queueing. It mutates directory/snoop
// state and remote caches but does not insert the line into n's caches.
func (m *Machine) fetchLine(n int, line uint64, now int64, exclusive bool) int64 {
	e := m.entry(line)
	forward := e.modified && int(e.owner) != n && e.sharers != 0

	var queue, lat int64
	if m.cfg.SnoopingBus {
		// One bus transaction: arbitration + snoop + memory (or a
		// cache-to-cache transfer from the dirty owner, same cost).
		queue = m.busQueue(now)
		lat = m.cfg.BusLat + m.cfg.LocalMem
	} else {
		home := m.mem.HomeOf(simm.Addr(line))
		queue = m.dirQueue(home, now)
		switch {
		case forward:
			lat = m.cfg.Remote3Hop
		case home == n:
			lat = m.cfg.LocalMem
		default:
			lat = m.cfg.Remote2Hop
		}
	}
	lat += m.l2Extra

	if exclusive {
		m.invalidateOthers(n, line, e)
		e.sharers = 1 << uint(n)
		e.owner = int8(n)
		e.modified = true
	} else {
		if forward {
			// The dirty third node supplies the data and keeps a
			// shared copy.
			if m.sh != nil {
				m.sh.intents = append(m.sh.intents, intent{target: int32(e.owner), line: line})
			} else {
				m.nodes[e.owner].l2.setState(line, stShared)
			}
			e.modified = false
		}
		e.sharers |= 1 << uint(n)
		if e.modified && int(e.owner) == n {
			// Re-fetch of our own dirty line (evicted from L2 but
			// still directory-owned) cannot happen: eviction writes
			// back. Keep the invariant explicit.
			e.modified = false
		}
	}
	return queue + lat
}

// insertL2 places the line into node n's secondary cache, handling
// victim writeback and L1 inclusion.
func (m *Machine) insertL2(n int, line uint64, st uint8) {
	nd := m.nodes[n]
	victim, vstate := nd.l2.fill(line, st)
	if victim == 0 {
		return
	}
	ve := m.entry(victim)
	if vstate == stModified {
		ve.modified = false
	}
	ve.sharers &^= 1 << uint(n)
	// Inclusion: the primary cache may not hold lines absent from the
	// secondary cache. This is a capacity effect, not coherence.
	nd.l1.invalidateRange(victim, uint64(m.cfg.L2Line), absentReplaced)
}

// wbPending reports whether node n's write buffer holds an undrained
// store to the given secondary line (read forwarding), pruning drained
// entries as a side effect.
func (m *Machine) wbPending(n int, line uint64, now int64) bool {
	nd := m.nodes[n]
	i := 0
	for i < len(nd.wb) && nd.wb[i].done <= now {
		i++
	}
	nd.wb = nd.wb[i:]
	for _, e := range nd.wb {
		if e.line == line {
			return true
		}
	}
	return false
}

// Read simulates a processor load of size bytes at address a issued by
// node n at the given cycle. The processor stalls on primary-cache read
// misses for the full round trip.
func (m *Machine) Read(n int, a simm.Addr, size int, now int64) AccessResult {
	return m.ReadCat(n, a, size, now, m.mem.CategoryOf(a))
}

// ReadCat is Read with the category of the reference's first byte
// precomputed — the engine's traced accessors resolve the page table
// once for both the data load and the attribution.
func (m *Machine) ReadCat(n int, a simm.Addr, size int, now int64, firstCat simm.Category) AccessResult {
	nd := m.nodes[n]
	addr := uint64(a)
	if nd.pfReady.len() > 0 {
		nd.expirePrefetches(now)
	}
	// Fast path for the overwhelmingly common reference: a single-line
	// access that hits the primary cache while the write buffer is
	// drained and no prefetch is outstanding. It touches only the L1
	// tag array — no page-table walk, no hash probes, no allocation, no
	// stall.
	if first := addr &^ (nd.l1.lineSize - 1); addr+uint64(size) <= first+nd.l1.lineSize &&
		len(nd.wb) == 0 && nd.pfReady.len() == 0 &&
		nd.l1.lines[nd.l1.setOf(first)] == first {
		m.st.Reads++
		m.st.ReadsByCat[firstCat]++
		return AccessResult{Cat: firstCat}
	}
	res := AccessResult{Cat: firstCat}
	end := addr + uint64(size)
	for line := nd.l1.lineOf(addr); line < end; line += nd.l1.lineSize {
		cat := firstCat
		if line > addr {
			// Later lines of a multi-line access may cross a page.
			cat = m.mem.CategoryOf(simm.Addr(line))
		}
		m.st.Reads++
		m.st.ReadsByCat[cat]++
		g := nd.l2.lineOf(line)
		if m.wbPending(n, g, now) {
			// Forwarded from a buffered store: no stall.
			continue
		}
		if nd.l1.lookup(line) {
			// A prefetched line may not have arrived yet: stall for
			// the remainder (a late prefetch hides only part of the
			// miss latency).
			if nd.pfReady.len() > 0 {
				if ready, ok := nd.pfReady.get(line); ok {
					if ready > now {
						res.Stall += ready - now
						m.st.LatePrefetches++
					}
					nd.pfReady.del(line)
				}
			}
			continue
		}
		kind := classify(nd.l1.seen, line)
		m.st.L1Misses.Add(cat, kind)
		m.st.L1ReadMisses++
		var lat int64
		if nd.l2.lookup(g) != stInvalid {
			lat = m.l1FillLat
		} else {
			m.st.L2Misses.Add(cat, classify(nd.l2.seen, g))
			m.st.L2ReadMisses++
			lat = m.fetchLine(n, g, now, false)
			m.insertL2(n, g, stShared)
		}
		nd.l1.fill(line)
		res.Stall += lat
		if m.cfg.PrefetchData && cat == simm.CatData {
			m.prefetch(n, line, now)
		}
	}
	return res
}

// Write simulates a processor store. Stores retire through the coalescing
// write buffer; the processor stalls only when the buffer overflows. The
// coherence action for each drained store is applied when the store is
// buffered (a small timing approximation documented in DESIGN.md).
func (m *Machine) Write(n int, a simm.Addr, size int, now int64) AccessResult {
	return m.WriteCat(n, a, size, now, m.mem.CategoryOf(a))
}

// WriteCat is Write with the first byte's category precomputed, the
// store-side twin of ReadCat.
func (m *Machine) WriteCat(n int, a simm.Addr, size int, now int64, cat simm.Category) AccessResult {
	nd := m.nodes[n]
	res := AccessResult{Cat: cat}
	m.st.Writes++
	g := nd.l2.lineOf(uint64(a))
	if m.wbPending(n, g, now) {
		// Coalesced with an earlier buffered store to the same line.
		return res
	}
	drain := m.exclusiveLatency(n, g, now)
	start := now
	if k := len(nd.wb); k > 0 && nd.wb[k-1].done > start {
		start = nd.wb[k-1].done
	}
	nd.wb = append(nd.wb, wbEntry{line: g, done: start + drain, cat: cat})
	if over := len(nd.wb) - m.cfg.WriteBufEntries; over > 0 {
		// Stall until enough leading entries drain to free a slot.
		blocker := nd.wb[over-1]
		res.Stall = blocker.done - now
		res.Cat = blocker.cat
		m.st.WBOverflows++
	}
	return res
}

// exclusiveLatency obtains ownership of the line for node n and returns
// the latency of doing so.
func (m *Machine) exclusiveLatency(n int, g uint64, now int64) int64 {
	nd := m.nodes[n]
	switch nd.l2.lookup(g) {
	case stModified:
		return m.l1FillLat
	case stShared:
		// Upgrade: invalidate the other sharers (directory round trip,
		// or a bus invalidation broadcast).
		var queue, lat int64
		if m.cfg.SnoopingBus {
			queue = m.busQueue(now)
			lat = m.cfg.BusLat
		} else {
			home := m.mem.HomeOf(simm.Addr(g))
			queue = m.dirQueue(home, now)
			if home == n {
				lat = m.cfg.LocalMem
			} else {
				lat = m.cfg.Remote2Hop
			}
		}
		e := m.entry(g)
		m.invalidateOthers(n, g, e)
		e.sharers = 1 << uint(n)
		e.owner = int8(n)
		e.modified = true
		nd.l2.setState(g, stModified)
		return queue + lat
	default:
		m.st.WriteMisses++
		lat := m.fetchLine(n, g, now, true)
		m.insertL2(n, g, stModified)
		return lat
	}
}

// Sync simulates an atomic read-modify-write (test-and-set or a
// releasing store). It bypasses the write buffer and stalls the
// processor for the full ownership round trip; spinning on a locally
// Modified line costs only a secondary-cache hit, which is what makes
// test-and-test-and-set spinlocks viable.
func (m *Machine) Sync(n int, a simm.Addr, now int64) AccessResult {
	nd := m.nodes[n]
	cat := m.mem.CategoryOf(a)
	m.st.Syncs++
	g := nd.l2.lineOf(uint64(a))
	line := nd.l1.lineOf(uint64(a))
	if nd.l2.lookup(g) == stInvalid {
		// Count the read component of the RMW as a read miss so lock
		// words show up in the Figure 7 tables.
		kind := classify(nd.l1.seen, line)
		m.st.L1Misses.Add(cat, kind)
		m.st.L1ReadMisses++
		m.st.Reads++
		m.st.ReadsByCat[cat]++
		m.st.L2Misses.Add(cat, classify(nd.l2.seen, g))
		m.st.L2ReadMisses++
	}
	stall := m.exclusiveLatency(n, g, now)
	nd.l1.fill(line)
	return AccessResult{Stall: stall, Cat: cat}
}

// prefetch implements Section 6: for an access to database data, fetch
// the next PrefetchDegree primary-cache lines into the primary cache.
// The fetch latency is hidden from the processor, but the fills evict
// primary-cache victims (disrupting private data) and the line fetches
// occupy home directories (contention) — the two overheads the paper
// observes.
func (m *Machine) prefetch(n int, l1line uint64, now int64) {
	nd := m.nodes[n]
	for i := 1; i <= m.cfg.PrefetchDegree; i++ {
		pa := l1line + uint64(i)*nd.l1.lineSize
		if m.mem.FindRegion(simm.Addr(pa)) == nil {
			return
		}
		if m.mem.CategoryOf(simm.Addr(pa)) != simm.CatData {
			return
		}
		if nd.l1.lookup(pa) {
			continue
		}
		m.st.Prefetches++
		g := nd.l2.lineOf(pa)
		lat := m.cfg.L2HitLat
		if nd.l2.lookup(g) == stInvalid {
			lat = m.fetchLine(n, g, now, false)
			m.insertL2(n, g, stShared)
		}
		nd.l1.fill(pa)
		nd.pfReady.set(pa, now+lat)
		nd.pfQueue = append(nd.pfQueue, pfEntry{line: pa, ready: now + lat})
	}
}

// Stats holds the machine's counters. Misses are classified at both
// cache levels by data structure and kind, reproducing Figure 7.
type Stats struct {
	L1Misses stats.MissCounts
	L2Misses stats.MissCounts

	Reads        uint64
	ReadsByCat   [simm.NumCategories]uint64
	L1ReadMisses uint64
	L2ReadMisses uint64

	Writes      uint64
	WriteMisses uint64
	WBOverflows uint64
	Syncs       uint64

	Invalidations  uint64
	Prefetches     uint64
	LatePrefetches uint64
}

// L1MissRate returns the primary-cache read miss rate.
func (s *Stats) L1MissRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.L1ReadMisses) / float64(s.Reads)
}

// L2MissRate returns the global secondary-cache read miss rate
// (secondary misses over all processor reads), matching how the paper
// reports "global miss rates" of 0.5-0.8%.
func (s *Stats) L2MissRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.L2ReadMisses) / float64(s.Reads)
}
