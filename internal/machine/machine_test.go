package machine

import (
	"testing"

	"repro/internal/simm"
	"repro/internal/stats"
)

// testRig builds a 4-node baseline machine with one shared Data region
// homed on node 0 and one homed on node 1.
func testRig(t *testing.T, cfg Config) (*Machine, *simm.Memory, simm.Addr, simm.Addr) {
	t.Helper()
	mem := simm.New(cfg.Nodes)
	r0 := mem.AllocRegion("data0", 1<<20, simm.CatData, 0)
	r1 := mem.AllocRegion("data1", 1<<20, simm.CatData, 1)
	m, err := New(cfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	return m, mem, r0.Base, r1.Base
}

func TestConfigValidate(t *testing.T) {
	good := Baseline()
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	bad := good
	bad.L1Line = 48
	if bad.Validate() == nil {
		t.Error("48-byte line should be rejected")
	}
	bad = good
	bad.Nodes = 0
	if bad.Validate() == nil {
		t.Error("0 nodes should be rejected")
	}
	bad = good
	bad.L2Line = 16 // smaller than L1 line
	if bad.Validate() == nil {
		t.Error("L2 line < L1 line should be rejected")
	}
}

func TestWithLineSizeHalvesL1(t *testing.T) {
	c := Baseline().WithLineSize(128)
	if c.L2Line != 128 || c.L1Line != 64 {
		t.Errorf("got L1=%d L2=%d", c.L1Line, c.L2Line)
	}
}

func TestReadColdMissThenHit(t *testing.T) {
	m, _, a0, _ := testRig(t, Baseline())
	// Node 0 reading its local region: cold L1+L2 miss, local memory.
	r := m.Read(0, a0, 8, 0)
	if r.Stall != m.cfg.LocalMem {
		t.Errorf("cold local read stall = %d, want %d", r.Stall, m.cfg.LocalMem)
	}
	if r.Cat != simm.CatData {
		t.Errorf("cat = %v", r.Cat)
	}
	if got := m.st.L1Misses[simm.CatData][stats.Cold]; got != 1 {
		t.Errorf("L1 cold misses = %d, want 1", got)
	}
	if got := m.st.L2Misses[simm.CatData][stats.Cold]; got != 1 {
		t.Errorf("L2 cold misses = %d, want 1", got)
	}
	// Same line again: pure hit.
	r = m.Read(0, a0, 8, 100)
	if r.Stall != 0 {
		t.Errorf("hit stall = %d, want 0", r.Stall)
	}
	// Neighboring L1 line within the same L2 line: L1 miss, L2 hit.
	r = m.Read(0, a0+32, 8, 200)
	if r.Stall != m.cfg.L2HitLat {
		t.Errorf("L2-hit stall = %d, want %d", r.Stall, m.cfg.L2HitLat)
	}
}

func TestRemoteReadLatency(t *testing.T) {
	m, _, _, a1 := testRig(t, Baseline())
	// Node 0 reading node 1's region: 2-hop remote, clean.
	r := m.Read(0, a1, 8, 0)
	if r.Stall != m.cfg.Remote2Hop {
		t.Errorf("remote clean read stall = %d, want %d", r.Stall, m.cfg.Remote2Hop)
	}
}

func TestDirtyRemoteIsThreeHop(t *testing.T) {
	m, _, _, a1 := testRig(t, Baseline())
	// Node 2 takes the line (homed at node 1) modified.
	if r := m.Sync(2, a1, 0); r.Stall != m.cfg.Remote2Hop {
		t.Fatalf("sync acquire stall = %d, want %d", r.Stall, m.cfg.Remote2Hop)
	}
	// Node 0 reads: home is node 1, owner is node 2 -> 3-hop.
	r := m.Read(0, a1, 8, 1000)
	if r.Stall != m.cfg.Remote3Hop {
		t.Errorf("dirty-remote read stall = %d, want %d", r.Stall, m.cfg.Remote3Hop)
	}
	// The read downgraded the owner; a second reader sees a clean line.
	r = m.Read(3, a1, 8, 2000)
	if r.Stall != m.cfg.Remote2Hop {
		t.Errorf("after downgrade, read stall = %d, want %d", r.Stall, m.cfg.Remote2Hop)
	}
}

func TestCoherenceMissClassification(t *testing.T) {
	m, _, a0, _ := testRig(t, Baseline())
	m.Read(0, a0, 8, 0) // node 0 caches the line
	m.Sync(1, a0, 100)  // node 1 takes it exclusive -> invalidates node 0
	r := m.Read(0, a0, 8, 200)
	if r.Stall == 0 {
		t.Fatal("expected a miss after invalidation")
	}
	if got := m.st.L2Misses[simm.CatData][stats.Cohe]; got != 1 {
		t.Errorf("L2 coherence misses = %d, want 1 (table: %v)", got, m.st.L2Misses)
	}
	if got := m.st.L1Misses[simm.CatData][stats.Cohe]; got != 1 {
		t.Errorf("L1 coherence misses = %d, want 1", got)
	}
	if m.st.Invalidations == 0 {
		t.Error("no invalidations recorded")
	}
}

func TestConflictMissClassification(t *testing.T) {
	cfg := Baseline()
	m, _, a0, _ := testRig(t, cfg)
	// Two addresses mapping to the same direct-mapped L1 set:
	// set = (line/32) % 128, so +4096 collides.
	b := a0 + simm.Addr(cfg.L1Bytes)
	m.Read(0, a0, 8, 0)
	m.Read(0, b, 8, 100) // evicts a0 from L1 (L2 is 2-way: both fit)
	r := m.Read(0, a0, 8, 200)
	if r.Stall != m.cfg.L2HitLat {
		t.Errorf("conflict refetch stall = %d, want L2 hit %d", r.Stall, m.cfg.L2HitLat)
	}
	if got := m.st.L1Misses[simm.CatData][stats.Conf]; got != 1 {
		t.Errorf("L1 conflict misses = %d, want 1", got)
	}
}

func TestL2LRUAndConflict(t *testing.T) {
	cfg := Baseline()
	m, _, a0, _ := testRig(t, cfg)
	// Three lines in the same 2-way L2 set: stride = sets*lineSize.
	stride := simm.Addr(cfg.L2Bytes / cfg.L2Ways)
	m.Read(0, a0, 8, 0)
	m.Read(0, a0+stride, 8, 10)
	m.Read(0, a0+2*stride, 8, 20) // evicts a0 (LRU)
	// The stride collides in the direct-mapped L1 too, so this is an L1
	// miss — but the recently-used line must still be an L2 hit.
	r := m.Read(0, a0+stride, 8, 30)
	if r.Stall != m.cfg.L2HitLat {
		t.Errorf("recently used line should hit in L2, stall=%d", r.Stall)
	}
	m.Read(0, a0, 8, 40)
	if got := m.st.L2Misses[simm.CatData][stats.Conf]; got != 1 {
		t.Errorf("L2 conflict misses = %d, want 1", got)
	}
}

func TestWriteBufferOverflowAndForwarding(t *testing.T) {
	cfg := Baseline()
	m, _, a0, _ := testRig(t, cfg)
	// Distinct L2 lines so nothing coalesces.
	now := int64(0)
	var stalled bool
	for i := 0; i < cfg.WriteBufEntries+4; i++ {
		r := m.Write(0, a0+simm.Addr(i*cfg.L2Line), 8, now)
		if r.Stall > 0 {
			stalled = true
		}
	}
	if !stalled {
		t.Error("expected write-buffer overflow stall")
	}
	if m.st.WBOverflows == 0 {
		t.Error("overflow counter not incremented")
	}
	// A read of a buffered line is forwarded with no stall.
	r := m.Read(0, a0, 8, now)
	if r.Stall != 0 {
		t.Errorf("forwarded read stall = %d, want 0", r.Stall)
	}
	// Coalescing: a second write to a pending line adds no entry and no stall.
	r = m.Write(0, a0+4, 8, now)
	if r.Stall != 0 {
		t.Errorf("coalesced write stall = %d", r.Stall)
	}
}

func TestWriteBufferDrains(t *testing.T) {
	cfg := Baseline()
	m, _, a0, _ := testRig(t, cfg)
	for i := 0; i < cfg.WriteBufEntries; i++ {
		m.Write(0, a0+simm.Addr(i*cfg.L2Line), 8, 0)
	}
	// Far in the future everything has drained: no stall on more writes.
	r := m.Write(0, a0+simm.Addr(100*cfg.L2Line), 8, 1_000_000)
	if r.Stall != 0 {
		t.Errorf("post-drain write stall = %d", r.Stall)
	}
}

func TestUpgradeInvalidatesSharers(t *testing.T) {
	m, _, a0, _ := testRig(t, Baseline())
	m.Read(0, a0, 8, 0)
	m.Read(1, a0, 8, 10)
	// Node 1 writes: upgrade, node 0 invalidated.
	m.Write(1, a0, 8, 20)
	r := m.Read(0, a0, 8, 20_000) // let the drain complete
	if r.Stall == 0 {
		t.Error("node 0 should miss after node 1's upgrade")
	}
	if got := m.st.L2Misses[simm.CatData][stats.Cohe]; got != 1 {
		t.Errorf("coherence misses = %d, want 1", got)
	}
}

func TestSyncSpinsLocallyWhenModified(t *testing.T) {
	m, _, a0, _ := testRig(t, Baseline())
	m.Sync(0, a0, 0)
	r := m.Sync(0, a0, 100)
	if r.Stall != m.cfg.L2HitLat {
		t.Errorf("local re-sync stall = %d, want %d", r.Stall, m.cfg.L2HitLat)
	}
}

func TestDirectoryContention(t *testing.T) {
	m, _, a0, _ := testRig(t, Baseline())
	// Two different lines with the same home, requested at the same
	// cycle: the second one queues behind the first.
	r1 := m.Read(1, a0, 8, 0)
	r2 := m.Read(2, a0+simm.Addr(m.cfg.L2Line), 8, 0)
	if r2.Stall != r1.Stall+m.cfg.DirOccupancy {
		t.Errorf("queued read stall = %d, want %d", r2.Stall, r1.Stall+m.cfg.DirOccupancy)
	}
}

func TestPrefetchReducesSequentialMisses(t *testing.T) {
	run := func(pf bool) uint64 {
		cfg := Baseline()
		cfg.PrefetchData = pf
		m, _, a0, _ := testRig(t, cfg)
		now := int64(0)
		for off := 0; off < 1<<14; off += 8 {
			r := m.Read(0, a0+simm.Addr(off), 8, now)
			now += 1 + r.Stall
		}
		return m.st.L1ReadMisses
	}
	base, opt := run(false), run(true)
	if opt >= base {
		t.Errorf("prefetch did not reduce misses: base=%d opt=%d", base, opt)
	}
	if opt == 0 {
		t.Error("prefetch cannot remove the very first miss")
	}
}

func TestPrefetchStopsAtNonDataCategory(t *testing.T) {
	cfg := Baseline()
	cfg.PrefetchData = true
	mem := simm.New(cfg.Nodes)
	rd := mem.AllocRegion("data", simm.PageSize, simm.CatData, 0)
	mem.AllocRegion("meta", simm.PageSize, simm.CatLockHash, 0)
	m, err := New(cfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Read near the end of the Data region: prefetches must not run
	// into the metadata region.
	m.Read(0, rd.End()-8, 8, 0)
	if got := m.st.ReadsByCat[simm.CatLockHash]; got != 0 {
		t.Errorf("prefetch leaked into metadata: %d reads", got)
	}
}

func TestFlushRestoresColdStart(t *testing.T) {
	m, _, a0, _ := testRig(t, Baseline())
	m.Read(0, a0, 8, 0)
	m.Flush()
	m.ResetStats()
	m.Read(0, a0, 8, 0)
	if got := m.st.L1Misses[simm.CatData][stats.Cold]; got != 1 {
		t.Errorf("post-flush miss not cold: %v", m.st.L1Misses[simm.CatData])
	}
}

func TestResetStatsKeepsWarmCaches(t *testing.T) {
	m, _, a0, _ := testRig(t, Baseline())
	m.Read(0, a0, 8, 0)
	m.ResetStats()
	r := m.Read(0, a0, 8, 100)
	if r.Stall != 0 {
		t.Errorf("warm read after ResetStats stalled %d", r.Stall)
	}
	if m.st.L1ReadMisses != 0 {
		t.Errorf("unexpected misses after reset: %d", m.st.L1ReadMisses)
	}
}

func TestReadSpanningTwoLines(t *testing.T) {
	m, _, a0, _ := testRig(t, Baseline())
	// An 8-byte read straddling an L1 line boundary touches two lines.
	a := a0 + 28
	m.Read(0, a, 8, 0)
	if m.st.Reads != 2 {
		t.Errorf("straddling read counted %d line accesses, want 2", m.st.Reads)
	}
}

func TestMissRates(t *testing.T) {
	m, _, a0, _ := testRig(t, Baseline())
	m.Read(0, a0, 8, 0)   // miss
	m.Read(0, a0, 8, 500) // hit
	m.Read(0, a0, 8, 600) // hit
	m.Read(0, a0, 8, 700) // hit
	if got := m.st.L1MissRate(); got != 0.25 {
		t.Errorf("L1 miss rate = %v, want 0.25", got)
	}
	if got := m.st.L2MissRate(); got != 0.25 {
		t.Errorf("L2 miss rate = %v, want 0.25", got)
	}
}

func TestStatsByGroup(t *testing.T) {
	var mc stats.MissCounts
	mc.Add(simm.CatPriv, stats.Conf)
	mc.Add(simm.CatData, stats.Cold)
	mc.Add(simm.CatLockSLock, stats.Cohe)
	mc.Add(simm.CatBufDesc, stats.Cohe)
	g := mc.ByGroup()
	if g[simm.GroupPriv] != 1 || g[simm.GroupData] != 1 || g[simm.GroupMetadata] != 2 {
		t.Errorf("groups = %v", g)
	}
	if mc.Total() != 4 || mc.ByKind(stats.Cohe) != 2 {
		t.Errorf("totals wrong: %d %d", mc.Total(), mc.ByKind(stats.Cohe))
	}
}

func TestLatePrefetchChargesRemainder(t *testing.T) {
	cfg := Baseline()
	cfg.PrefetchData = true
	m, _, a0, _ := testRig(t, cfg)
	// Access line 0: prefetches lines 1..4 with arrival = now + latency.
	r0 := m.Read(0, a0, 8, 0)
	if m.st.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
	// Demand the prefetched neighbor immediately: it is in the L1 but
	// its data has not arrived, so the access stalls for the remainder.
	r1 := m.Read(0, a0+simm.Addr(cfg.L1Line), 8, 1)
	if r1.Stall == 0 {
		t.Error("immediate use of a prefetched line should stall")
	}
	if r1.Stall >= r0.Stall {
		t.Errorf("late-prefetch stall %d should be below a full miss %d", r1.Stall, r0.Stall)
	}
	if m.st.LatePrefetches == 0 {
		t.Error("late prefetch not counted")
	}
	// Far in the future the line has arrived: free hit.
	r2 := m.Read(0, a0+simm.Addr(2*cfg.L1Line), 8, 100000)
	if r2.Stall != 0 {
		t.Errorf("arrived prefetch should be a free hit, stall=%d", r2.Stall)
	}
}

func TestTransferTimeScalesWithLineSize(t *testing.T) {
	run := func(l2line int) int64 {
		cfg := Baseline().WithLineSize(l2line)
		m, _, a0, _ := testRig(t, cfg)
		return m.Read(0, a0, 8, 0).Stall
	}
	base, long := run(64), run(256)
	if long <= base {
		t.Errorf("256B-line miss (%d) should cost more than 64B (%d)", long, base)
	}
	short := run(16)
	if short >= base {
		t.Errorf("16B-line miss (%d) should cost less than 64B (%d)", short, base)
	}
}

func TestSyncCountsMissOnlyOnL2Miss(t *testing.T) {
	m, _, a0, _ := testRig(t, Baseline())
	m.Sync(0, a0, 0) // cold: one counted miss
	before := m.st.L1ReadMisses
	m.Sync(0, a0, 100) // locally modified: no new miss
	if m.st.L1ReadMisses != before {
		t.Errorf("local re-sync added misses")
	}
}

func TestSnoopingBusContention(t *testing.T) {
	cfg := Baseline()
	cfg.SnoopingBus = true
	m, _, a0, _ := testRig(t, cfg)
	// Two misses at the same cycle: the second queues behind the first
	// on the single bus regardless of home node.
	r1 := m.Read(0, a0, 8, 0)
	r2 := m.Read(1, a0+simm.Addr(cfg.L2Line), 8, 0)
	if r2.Stall != r1.Stall+cfg.BusLat {
		t.Errorf("queued bus read stall = %d, want %d", r2.Stall, r1.Stall+cfg.BusLat)
	}
	// Bus transactions cost BusLat + memory, independent of home.
	if r1.Stall != cfg.BusLat+cfg.LocalMem {
		t.Errorf("bus miss stall = %d, want %d", r1.Stall, cfg.BusLat+cfg.LocalMem)
	}
}

func TestSnoopingBusCoherence(t *testing.T) {
	cfg := Baseline()
	cfg.SnoopingBus = true
	m, _, a0, _ := testRig(t, cfg)
	m.Read(0, a0, 8, 0)
	m.Sync(1, a0, 10_000) // broadcast invalidation
	r := m.Read(0, a0, 8, 20_000)
	if r.Stall == 0 {
		t.Error("invalidated reader should miss")
	}
	if got := m.st.L2Misses[simm.CatData][stats.Cohe]; got != 1 {
		t.Errorf("coherence misses = %d, want 1", got)
	}
}
