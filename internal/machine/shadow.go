package machine

import "repro/internal/simm"

// Epoch-parallel replay support: one Shadow per processor gives the
// replay driver a speculative view of the machine for the duration of
// one clock window. The design splits the machine's mutable state by
// who may legally touch it mid-window:
//
//   - Own-node state (L1/L2 arrays, seen history, write buffer) is
//     mutated in place — only the owning processor ever touches it —
//     under an undo journal (cacheJournal) so an aborted window can
//     roll back byte-for-byte.
//   - Directory entries read through a per-shadow overlay seeded from
//     the frozen base table (non-inserting get). The overlay keyset is
//     exactly the window's directory-touched line set, which
//     CommitWindow requires to be pairwise disjoint across processors.
//   - Directory/bus occupancy (dirFreeAt) runs against a private copy,
//     with every reservation logged; CommitWindow re-derives each delay
//     from the merged cross-processor reservation order and aborts on
//     any mismatch or cross-processor tie.
//   - Remote-node mutations (coherence invalidations, dirty-forward
//     downgrades) buffer as intents, applied at commit only after
//     proving the target could not have observed the difference
//     mid-window (target never touched the line's page, never filled
//     into the affected cache sets).
//   - Stats accumulate into the shadow's private copy (the Machine
//     value embeds Stats by value) and merge at commit; every counter
//     is additive, so the merge is exact.
//
// Windows with lock-manager operations, overlapping page footprints, or
// prefetching enabled never run on shadows at all — the epoch driver in
// internal/sched falls back to the flat serial driver for those.

// dirTouch is one logged occupancy reservation (dirQueue or busQueue).
//
// issue is the scheduling step's decision clock — the processor's clock
// at the moment the serial driver would have picked it to run the event
// (or spin step) that produced this touch. The serial driver applies
// every occupancy mutation of one step atomically before the next step
// runs, and steps run in nondecreasing decision-clock order, so the
// global serial order of touches is (issue, per-processor sequence) —
// NOT `now` order: a multi-charge step (a spin step's read + atomic,
// say) reserves occupancy at `now`s far past other processors' pending
// decision clocks.
type dirTouch struct {
	home    int32
	reserve int64 // DirOccupancy or BusLat
	issue   int64 // decision clock of the issuing scheduling step
	now     int64 // requesting processor's clock at the access
	delay   int64 // start - now observed against the private copy
}

// intent is one buffered remote-node mutation.
type intent struct {
	target int32
	line   uint64
	inval  bool // true: invalidate L2 line + L1 range; false: downgrade to shared
}

// Undo-record kinds. idx/old are interpreted per kind.
const (
	uL1Line  = uint8(iota) // idx = L1 set, old = line address
	uL1Seen                // idx = line, old = seen mark
	uL2Tag                 // idx = L2 slot, old = tag
	uL2State               // idx = L2 slot, old = state
	uL2Order               // idx = L2 set base, old = packed order bytes (ways <= 8)
	uL2OrderB              // idx = L2 slot, old = one order byte (ways > 8)
	uL2Seen                // idx = line, old = seen mark
)

type undoRec struct {
	kind uint8
	idx  uint64
	old  uint64
}

// cacheJournal is the own-node undo log: every mutation of the owning
// processor's L1/L2 state during a speculative window appends its
// pre-image here, and the fill lists feed CommitWindow's intent checks.
type cacheJournal struct {
	undo    []undoRec
	l1Fills []uint64 // L1 set indices filled this window
	l2Fills []uint64 // L2 set indices filled this window
}

func (j *cacheJournal) push(kind uint8, idx, old uint64) {
	j.undo = append(j.undo, undoRec{kind: kind, idx: idx, old: old})
}

// pushOrder snapshots one L2 set's recency ranks before a touch
// reorders them: packed into one record for the universal ways <= 8
// geometries, per-byte otherwise.
func (j *cacheJournal) pushOrder(c *l2Cache, base int) {
	if c.ways <= 8 {
		var packed uint64
		for w := 0; w < c.ways; w++ {
			packed |= uint64(c.order[base+w]) << (8 * w)
		}
		j.push(uL2Order, uint64(base), packed)
		return
	}
	for w := 0; w < c.ways; w++ {
		j.push(uL2OrderB, uint64(base+w), uint64(c.order[base+w]))
	}
}

func (j *cacheJournal) reset() {
	j.undo = j.undo[:0]
	j.l1Fills = j.l1Fills[:0]
	j.l2Fills = j.l2Fills[:0]
}

// rollback restores the node's caches by applying pre-images in reverse
// append order. It writes the arrays directly, so it never re-journals.
func (j *cacheJournal) rollback(nd *node) {
	for i := len(j.undo) - 1; i >= 0; i-- {
		r := j.undo[i]
		switch r.kind {
		case uL1Line:
			nd.l1.lines[r.idx] = r.old
		case uL1Seen:
			nd.l1.seen.set(r.idx, uint8(r.old))
		case uL2Tag:
			nd.l2.tags[r.idx] = r.old
		case uL2State:
			nd.l2.state[r.idx] = uint8(r.old)
		case uL2Order:
			for w := 0; w < nd.l2.ways; w++ {
				nd.l2.order[int(r.idx)+w] = uint8(r.old >> (8 * w))
			}
		case uL2OrderB:
			nd.l2.order[r.idx] = uint8(r.old)
		case uL2Seen:
			nd.l2.seen.set(r.idx, uint8(r.old))
		}
	}
}

// dirOverlay is the per-shadow directory view: an open-addressed table
// whose slots are live only when stamped with the current generation,
// so a window reset is one counter bump. Entries seed from the base
// table on first touch; the live keyset is the window's directory
// footprint.
type dirOverlay struct {
	keys  []uint64
	vals  []dirEntry
	gen   []uint32
	cur   uint32
	mask  uint64
	used  int
	lines []uint64 // live keys in first-touch order, for commit iteration
}

const overlayInitSize = 512

func newDirOverlay() dirOverlay {
	return dirOverlay{
		keys: make([]uint64, overlayInitSize),
		vals: make([]dirEntry, overlayInitSize),
		gen:  make([]uint32, overlayInitSize),
		mask: overlayInitSize - 1,
		cur:  1,
	}
}

func (o *dirOverlay) reset() {
	o.cur++
	o.used = 0
	o.lines = o.lines[:0]
}

// entry returns the overlay slot for line, seeding from base on first
// touch this window. The pointer is invalidated by the next entry call
// (growth), same contract as dirTab.entry.
func (o *dirOverlay) entry(line uint64, base *dirTab) *dirEntry {
	i := lineHash(line) & o.mask
	for o.gen[i] == o.cur && o.keys[i] != line {
		i = (i + 1) & o.mask
	}
	if o.gen[i] != o.cur {
		o.keys[i] = line
		o.gen[i] = o.cur
		o.vals[i], _ = base.get(line)
		o.used++
		o.lines = append(o.lines, line)
		if uint64(o.used)*4 > (o.mask+1)*3 {
			o.grow()
			return o.entry(line, base)
		}
	}
	return &o.vals[i]
}

func (o *dirOverlay) grow() {
	oldK, oldV, oldG := o.keys, o.vals, o.gen
	n := (o.mask + 1) * 2
	o.keys = make([]uint64, n)
	o.vals = make([]dirEntry, n)
	o.gen = make([]uint32, n)
	o.mask = n - 1
	for i, g := range oldG {
		if g != o.cur {
			continue
		}
		j := lineHash(oldK[i]) & o.mask
		for o.gen[j] == o.cur {
			j = (j + 1) & o.mask
		}
		o.keys[j], o.vals[j], o.gen[j] = oldK[i], oldV[i], o.cur
	}
}

// get returns the committed-to-be value of a live overlay entry.
func (o *dirOverlay) get(line uint64) (dirEntry, bool) {
	i := lineHash(line) & o.mask
	for o.gen[i] == o.cur {
		if o.keys[i] == line {
			return o.vals[i], true
		}
		i = (i + 1) & o.mask
	}
	return dirEntry{}, false
}

// Shadow is one processor's speculative machine view for the duration
// of one epoch window. The embedded Machine value copies the base
// machine with private stats, private occupancy clocks, and the sh
// back-pointer set, so the unchanged Read/Write/Sync code paths run
// against it verbatim; interceptions happen at the five points the base
// methods consult m.sh.
type Shadow struct {
	sm   Machine
	base *Machine
	node int

	overlay   dirOverlay
	dirFreeAt []int64
	dirLog    []dirTouch
	stepClock int64
	intents   []intent
	j         cacheJournal
	wbSnap    []wbEntry
}

// SetStepClock records the decision clock of the scheduling step about
// to run — the processor's clock before the step's first charge. Every
// occupancy touch logged until the next call carries this clock; see
// dirTouch.issue. The epoch driver calls this before each replayed
// event and each spin iteration.
func (s *Shadow) SetStepClock(c int64) { s.stepClock = c }

// NewShadow builds the reusable shadow view of node's processor.
func NewShadow(base *Machine, node int) *Shadow {
	return &Shadow{
		base:      base,
		node:      node,
		overlay:   newDirOverlay(),
		dirFreeAt: make([]int64, len(base.dirFreeAt)),
	}
}

// M returns the shadow machine to drive accesses through during the
// window. Valid between Begin and the window's commit or rollback.
func (s *Shadow) M() *Machine { return &s.sm }

// Node returns the processor this shadow belongs to.
func (s *Shadow) Node() int { return s.node }

// Begin opens a window: re-copies the base machine (stats zeroed,
// occupancy clocks snapshotted), resets all logs, and attaches the undo
// journal to the owning node's caches. Safe to call concurrently across
// shadows — it only reads the base machine.
func (s *Shadow) Begin() {
	s.sm = *s.base
	s.sm.sh = s
	s.sm.winScratch = nil
	s.sm.st = Stats{}
	copy(s.dirFreeAt, s.base.dirFreeAt)
	s.sm.dirFreeAt = s.dirFreeAt
	s.overlay.reset()
	s.dirLog = s.dirLog[:0]
	s.intents = s.intents[:0]
	s.j.reset()
	nd := s.base.nodes[s.node]
	s.wbSnap = append(s.wbSnap[:0], nd.wb...)
	nd.l1.j = &s.j
	nd.l2.j = &s.j
}

// detach removes the undo journal from the node's caches; called on
// both the commit and the rollback path, before any cross-node effects
// (intents) are applied.
func (s *Shadow) detach() {
	nd := s.base.nodes[s.node]
	nd.l1.j = nil
	nd.l2.j = nil
}

// Rollback restores every own-node effect of the window: cache arrays
// and seen history from the undo journal (reverse order), then the
// write buffer from its snapshot. Directory overlay, occupancy log,
// intents, and shadow stats are discarded by the next Begin.
func (s *Shadow) Rollback() {
	s.detach()
	nd := s.base.nodes[s.node]
	s.j.rollback(nd)
	nd.wb = append(nd.wb[:0], s.wbSnap...)
}

// dirEntry serves the shadow machine's directory lookups through the
// overlay (called from Machine.entry when m.sh != nil).
func (s *Shadow) dirEntry(line uint64) *dirEntry {
	return s.overlay.entry(line, s.base.dir)
}

// commitScratch is CommitWindow's reusable validation state.
type commitScratch struct {
	// lineOwner detects cross-processor directory-footprint overlap:
	// line -> owning node, generation-stamped like dirOverlay.
	keys  []uint64
	owner []int32
	gen   []uint32
	cur   uint32
	mask  uint64
	used  int

	dirFreeAt []int64 // merge-replay target
	heads     []int   // per-shadow dirLog cursor
}

func newCommitScratch(nodes int) *commitScratch {
	return &commitScratch{
		keys:      make([]uint64, overlayInitSize),
		owner:     make([]int32, overlayInitSize),
		gen:       make([]uint32, overlayInitSize),
		mask:      overlayInitSize - 1,
		cur:       0,
		dirFreeAt: make([]int64, nodes),
		heads:     make([]int, nodes),
	}
}

// claim records node's claim on line, reporting false on a conflict
// (another node already claimed it this window).
func (c *commitScratch) claim(line uint64, node int32) bool {
	i := lineHash(line) & c.mask
	for c.gen[i] == c.cur && c.keys[i] != line {
		i = (i + 1) & c.mask
	}
	if c.gen[i] == c.cur {
		return c.owner[i] == node
	}
	c.keys[i], c.owner[i], c.gen[i] = line, node, c.cur
	c.used++
	if uint64(c.used)*4 > (c.mask+1)*3 {
		c.grow()
	}
	return true
}

func (c *commitScratch) grow() {
	oldK, oldO, oldG := c.keys, c.owner, c.gen
	n := (c.mask + 1) * 2
	c.keys = make([]uint64, n)
	c.owner = make([]int32, n)
	c.gen = make([]uint32, n)
	c.mask = n - 1
	for i, g := range oldG {
		if g != c.cur {
			continue
		}
		j := lineHash(oldK[i]) & c.mask
		for c.gen[j] == c.cur {
			j = (j + 1) & c.mask
		}
		c.keys[j], c.owner[j], c.gen[j] = oldK[i], oldO[i], c.cur
	}
}

// CommitWindow validates one epoch window's shadows against each other
// and, when every check passes, folds their effects into the base
// machine and returns true. shadows is indexed by node; nil entries are
// processors that did not run this window. pages reports whether the
// given node's prescanned window footprint contains the page — the
// prescan's page set is a proven superset of the pages the node's
// events touch, which is what makes the intent checks sound.
//
// On false, the base machine is untouched (all validation runs on
// scratch state); the caller must Rollback every shadow and re-run the
// window serially.
//
// The checks, and why each one suffices:
//
//  1. Directory disjointness: every directory entry touched this window
//     (demand lines and eviction victims alike — both go through
//     Machine.entry, both land in the overlay keyset) is claimed by
//     exactly one processor, so each overlay's entry evolution equals
//     the serial run's regardless of interleaving.
//  2. Occupancy merge-replay: reservations from all processors merge in
//     scheduling-step issue order (decision clock, then per-processor
//     log sequence — see dirTouch.issue for why `now` order is wrong)
//     and replay against the window-start clocks; any delay that
//     differs from the shadow-observed one, and any same-home
//     reservation from two processors' same-clock steps (where serial
//     order depends on scheduler history), aborts.
//  3. Intent safety: a buffered remote mutation of line L on node q
//     commits only if q provably could not have interacted with L this
//     window: q never touched L's page (footprint check — so no hit,
//     probe, or classification involving L happened), q filled no line
//     into L's L2 set (victim selection there would have seen L's slot
//     freed mid-window in the serial order), and q filled no L1 line
//     into the sets L's L1 range maps to (same argument). Everything
//     else about an invalidation commutes: it changes no recency ranks
//     and no other line's state.
//
// Own-node effects need no validation: they are already in place and
// only observable to their owner. Stats merge unconditionally — every
// counter is additive.
func CommitWindow(base *Machine, shadows []*Shadow, pages func(node int, page uint64) bool) bool {
	if base.winScratch == nil {
		base.winScratch = newCommitScratch(base.cfg.Nodes)
	}
	c := base.winScratch
	c.cur++
	c.used = 0

	// 1. Directory-footprint disjointness.
	for _, s := range shadows {
		if s == nil {
			continue
		}
		for _, line := range s.overlay.lines {
			if !c.claim(line, int32(s.node)) {
				return false
			}
		}
	}

	// 3. Intent safety (checked before the occupancy replay: it is the
	// cheaper rejection for contended windows).
	for _, s := range shadows {
		if s == nil {
			continue
		}
		for _, it := range s.intents {
			q := int(it.target)
			if pages != nil && pages(q, uint64(it.line)>>simm.PageShift) {
				return false
			}
			t := shadows[q]
			if t == nil {
				continue
			}
			l2set := base.nodes[q].l2.setOf(it.line)
			for _, f := range t.j.l2Fills {
				if f == l2set {
					return false
				}
			}
			l1 := base.nodes[q].l1
			end := it.line + uint64(base.cfg.L2Line)
			for _, f := range t.j.l1Fills {
				for line := it.line; line < end; line += l1.lineSize {
					if f == l1.setOf(line) {
						return false
					}
				}
			}
		}
	}

	// 2. Occupancy merge-replay, in step-issue order. The serial driver
	// runs scheduling steps in nondecreasing decision-clock order and
	// applies all of one step's reservations atomically, so the serial
	// touch order is (issue, per-processor sequence) — a step's later
	// touches can carry `now`s past other processors' pending steps.
	// Touches from distinct-clock steps replay in issue order; runs of
	// touches from different processors at the SAME decision clock
	// commute only if they reserve disjoint homes (the serial order
	// between same-clock steps depends on baton history the shadows
	// cannot see), so a shared home there aborts.
	copy(c.dirFreeAt, base.dirFreeAt)
	for i := range c.heads {
		c.heads[i] = 0
	}
	for {
		best := int64(1<<63 - 1)
		for _, s := range shadows {
			if s == nil || c.heads[s.node] >= len(s.dirLog) {
				continue
			}
			if is := s.dirLog[c.heads[s.node]].issue; is < best {
				best = is
			}
		}
		if best == 1<<63-1 {
			break
		}
		var seen uint64 // homes reserved at this decision clock so far
		for _, s := range shadows {
			if s == nil {
				continue
			}
			h := c.heads[s.node]
			if h >= len(s.dirLog) || s.dirLog[h].issue != best {
				continue
			}
			var mine uint64
			for h < len(s.dirLog) && s.dirLog[h].issue == best {
				e := s.dirLog[h]
				h++
				mine |= 1 << uint(e.home)
				start := e.now
				if c.dirFreeAt[e.home] > start {
					start = c.dirFreeAt[e.home]
				}
				if start-e.now != e.delay {
					return false
				}
				c.dirFreeAt[e.home] = start + e.reserve
			}
			if seen&mine != 0 {
				return false
			}
			seen |= mine
			c.heads[s.node] = h
		}
	}

	// Commit: detach journals first so the cross-node intent application
	// below is not recorded into anyone's undo log.
	for _, s := range shadows {
		if s != nil {
			s.detach()
		}
	}
	copy(base.dirFreeAt, c.dirFreeAt)
	for _, s := range shadows {
		if s == nil {
			continue
		}
		for _, line := range s.overlay.lines {
			v, _ := s.overlay.get(line)
			*base.dir.entry(line) = v
		}
		for _, it := range s.intents {
			q := int(it.target)
			if it.inval {
				base.nodes[q].l2.invalidate(it.line)
				base.nodes[q].l1.invalidateRange(it.line, uint64(base.cfg.L2Line), absentInvalidated)
			} else {
				base.nodes[q].l2.setState(it.line, stShared)
			}
		}
		base.st.add(&s.sm.st)
	}
	return true
}

// add accumulates another stats block; every field is a pure counter.
func (s *Stats) add(o *Stats) {
	s.L1Misses.AddAll(&o.L1Misses)
	s.L2Misses.AddAll(&o.L2Misses)
	s.Reads += o.Reads
	for i := range s.ReadsByCat {
		s.ReadsByCat[i] += o.ReadsByCat[i]
	}
	s.L1ReadMisses += o.L1ReadMisses
	s.L2ReadMisses += o.L2ReadMisses
	s.Writes += o.Writes
	s.WriteMisses += o.WriteMisses
	s.WBOverflows += o.WBOverflows
	s.Syncs += o.Syncs
	s.Invalidations += o.Invalidations
	s.Prefetches += o.Prefetches
	s.LatePrefetches += o.LatePrefetches
}
