package machine

import (
	"testing"

	"repro/internal/simm"
)

func benchRig(b *testing.B) (*Machine, simm.Addr) {
	b.Helper()
	cfg := Baseline()
	mem := simm.New(cfg.Nodes)
	r := mem.AllocRegion("data", 64<<20, simm.CatData, simm.AnyNode)
	m, err := New(cfg, mem)
	if err != nil {
		b.Fatal(err)
	}
	return m, r.Base
}

func BenchmarkReadHit(b *testing.B) {
	m, base := benchRig(b)
	m.Read(0, base, 8, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(0, base, 8, int64(i))
	}
}

func BenchmarkReadStreamCold(b *testing.B) {
	m, base := benchRig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(0, base+simm.Addr((i*8)%(48<<20)), 8, int64(i))
	}
}

func BenchmarkWriteBuffered(b *testing.B) {
	m, base := benchRig(b)
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		// Advance time by the reported stall, as the execution engine
		// does: otherwise drains never catch up and the pending list
		// grows without bound.
		r := m.Write(0, base+simm.Addr((i*64)%(48<<20)), 8, now)
		now += 100 + r.Stall
	}
}

func BenchmarkSyncPingPong(b *testing.B) {
	m, base := benchRig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sync(i%2, base, int64(i)*1000)
	}
}

func BenchmarkCoherenceInvalidation(b *testing.B) {
	m, base := benchRig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := int64(i) * 2000
		m.Read(0, base, 8, now)
		m.Read(1, base, 8, now+500)
		m.Write(2, base, 8, now+1000)
	}
}
