package machine

import (
	"math/rand"
	"testing"

	"repro/internal/simm"
	"repro/internal/stats"
)

// This file cross-validates the optimized machine model against an
// independently written reference implementation of the same
// specification: direct-mapped L1 inclusive in a 2-way LRU L2, MSI
// full-bit-vector directory, cold/conflict/coherence classification.
// Both models replay the same pseudo-random multiprocessor access
// script; their per-category, per-kind miss tables and invalidation
// counts must agree exactly. Accesses are spaced far apart in simulated
// time so write-buffer timing (tested separately) never intrudes.

type refLine struct {
	line uint64
	when int // LRU tick
}

type refCache struct {
	lineSize uint64
	sets     uint64
	ways     int
	content  map[uint64][]refLine // set -> resident lines (<= ways)
	state    map[uint64]uint8     // line -> MSI (L2 only)
	seen     map[uint64]uint8     // line -> cold(0)/replaced(1)/invalidated(2)/present(3)
	tick     int
}

func newRefCache(bytes, line, ways int) *refCache {
	return &refCache{
		lineSize: uint64(line),
		sets:     uint64(bytes / (line * ways)),
		ways:     ways,
		content:  make(map[uint64][]refLine),
		state:    make(map[uint64]uint8),
		seen:     make(map[uint64]uint8),
	}
}

func (c *refCache) set(line uint64) uint64 { return (line / c.lineSize) % c.sets }

func (c *refCache) has(line uint64) bool {
	for _, l := range c.content[c.set(line)] {
		if l.line == line {
			return true
		}
	}
	return false
}

func (c *refCache) touch(line uint64) {
	c.tick++
	s := c.set(line)
	for i := range c.content[s] {
		if c.content[s][i].line == line {
			c.content[s][i].when = c.tick
		}
	}
}

func (c *refCache) classify(line uint64) stats.MissKind {
	switch c.seen[line] {
	case 1:
		return stats.Conf
	case 2:
		return stats.Cohe
	default:
		return stats.Cold
	}
}

// insert returns the evicted victim line (0 if none).
func (c *refCache) insert(line uint64) uint64 {
	c.tick++
	s := c.set(line)
	rows := c.content[s]
	if len(rows) < c.ways {
		c.content[s] = append(rows, refLine{line, c.tick})
		c.seen[line] = 3
		return 0
	}
	// Evict the least recently used way.
	lru := 0
	for i := 1; i < len(rows); i++ {
		if rows[i].when < rows[lru].when {
			lru = i
		}
	}
	victim := rows[lru].line
	rows[lru] = refLine{line, c.tick}
	c.content[s] = rows
	c.seen[victim] = 1 // replaced
	c.seen[line] = 3
	return victim
}

func (c *refCache) drop(line uint64, reason uint8) bool {
	s := c.set(line)
	rows := c.content[s]
	for i, l := range rows {
		if l.line == line {
			c.content[s] = append(rows[:i], rows[i+1:]...)
			c.seen[line] = reason
			return true
		}
	}
	return false
}

type refDir struct {
	sharers map[uint64]map[int]bool
	owner   map[uint64]int // modified owner; -1 when clean
}

type refMachine struct {
	cfg Config
	mem *simm.Memory
	l1  []*refCache
	l2  []*refCache
	dir refDir
	l1m stats.MissCounts
	l2m stats.MissCounts
	inv uint64
}

func newRefMachine(cfg Config, mem *simm.Memory) *refMachine {
	r := &refMachine{
		cfg: cfg, mem: mem,
		dir: refDir{sharers: map[uint64]map[int]bool{}, owner: map[uint64]int{}},
	}
	for i := 0; i < cfg.Nodes; i++ {
		r.l1 = append(r.l1, newRefCache(cfg.L1Bytes, cfg.L1Line, 1))
		r.l2 = append(r.l2, newRefCache(cfg.L2Bytes, cfg.L2Line, cfg.L2Ways))
	}
	return r
}

func (r *refMachine) sharerSet(g uint64) map[int]bool {
	s := r.dir.sharers[g]
	if s == nil {
		s = map[int]bool{}
		r.dir.sharers[g] = s
		r.dir.owner[g] = -1
	}
	return s
}

// invalidateL1Range drops every L1 line of node n overlapping the L2 line.
func (r *refMachine) invalidateL1Range(n int, g uint64, reason uint8) {
	for a := g; a < g+uint64(r.cfg.L2Line); a += uint64(r.cfg.L1Line) {
		r.l1[n].drop(a, reason)
	}
}

func (r *refMachine) invalidateOthers(n int, g uint64) {
	sh := r.sharerSet(g)
	for q := range sh {
		if q == n {
			continue
		}
		if r.l2[q].drop(g, 2) {
		}
		r.invalidateL1Range(q, g, 2)
		delete(sh, q)
		r.inv++
	}
}

// fetchShared brings g into node n's L2 in shared state.
func (r *refMachine) fetchShared(n int, g uint64) {
	if owner := r.dir.owner[g]; owner >= 0 && owner != n && r.sharerSet(g)[owner] {
		r.l2[owner].state[g] = stShared
		r.dir.owner[g] = -1
	}
	r.sharerSet(g)[n] = true
	r.insertL2(n, g, stShared)
}

func (r *refMachine) insertL2(n int, g uint64, st uint8) {
	victim := r.l2[n].insert(g)
	r.l2[n].state[g] = st
	if victim != 0 {
		if r.dir.owner[victim] == n {
			r.dir.owner[victim] = -1
		}
		delete(r.sharerSet(victim), n)
		delete(r.l2[n].state, victim)
		r.invalidateL1Range(n, victim, 1)
	}
}

func (r *refMachine) exclusive(n int, g uint64) {
	st := r.l2[n].state[g]
	if r.l2[n].has(g) && st == stModified {
		r.l2[n].touch(g)
		return
	}
	r.invalidateOthers(n, g)
	if r.l2[n].has(g) {
		r.l2[n].state[g] = stModified
		r.l2[n].touch(g)
	} else {
		r.insertL2(n, g, stModified)
	}
	sh := r.sharerSet(g)
	for q := range sh {
		delete(sh, q)
	}
	sh[n] = true
	r.dir.owner[g] = n
}

func (r *refMachine) read(n int, a simm.Addr, size int) {
	addr, end := uint64(a), uint64(a)+uint64(size)
	for line := addr &^ (uint64(r.cfg.L1Line) - 1); line < end; line += uint64(r.cfg.L1Line) {
		cat := r.mem.CategoryOf(simm.Addr(line))
		g := line &^ (uint64(r.cfg.L2Line) - 1)
		if r.l1[n].has(line) {
			r.l1[n].touch(line)
			continue
		}
		r.l1m.Add(cat, r.l1[n].classify(line))
		if r.l2[n].has(g) {
			r.l2[n].touch(g)
		} else {
			r.l2m.Add(cat, r.l2[n].classify(g))
			r.fetchShared(n, g)
		}
		if v := r.l1[n].insert(line); v != 0 {
			_ = v
		}
	}
}

func (r *refMachine) write(n int, a simm.Addr) {
	g := uint64(a) &^ (uint64(r.cfg.L2Line) - 1)
	r.exclusive(n, g)
}

func (r *refMachine) sync(n int, a simm.Addr) {
	cat := r.mem.CategoryOf(a)
	g := uint64(a) &^ (uint64(r.cfg.L2Line) - 1)
	line := uint64(a) &^ (uint64(r.cfg.L1Line) - 1)
	if !r.l2[n].has(g) || r.l2[n].state[g] == stInvalid {
		r.l1m.Add(cat, r.l1[n].classify(line))
		r.l2m.Add(cat, r.l2[n].classify(g))
	}
	r.exclusive(n, g)
	r.l1[n].insert(line)
}

// TestAgainstReferenceModel replays a long random script through both
// implementations and compares the complete miss tables.
func TestAgainstReferenceModel(t *testing.T) {
	for _, geom := range []struct {
		name         string
		l1, l1l      int
		l2, l2l, wys int
	}{
		{"baseline", 4 << 10, 32, 128 << 10, 64, 2},
		{"short-lines", 4 << 10, 8, 128 << 10, 16, 2},
		{"long-lines", 4 << 10, 128, 128 << 10, 256, 2},
		{"big-4way", 32 << 10, 32, 1 << 20, 64, 4},
	} {
		t.Run(geom.name, func(t *testing.T) {
			cfg := Baseline()
			cfg.L1Bytes, cfg.L1Line = geom.l1, geom.l1l
			cfg.L2Bytes, cfg.L2Line, cfg.L2Ways = geom.l2, geom.l2l, geom.wys
			mem := simm.New(cfg.Nodes)
			regions := []*simm.Region{
				mem.AllocRegion("data", 1<<20, simm.CatData, simm.AnyNode),
				mem.AllocRegion("meta", 64<<10, simm.CatLockHash, simm.AnyNode),
				mem.AllocRegion("priv", 256<<10, simm.CatPriv, 0),
			}
			m, err := New(cfg, mem)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefMachine(cfg, mem)

			rng := rand.New(rand.NewSource(99))
			now := int64(0)
			for i := 0; i < 60000; i++ {
				n := rng.Intn(cfg.Nodes)
				reg := regions[rng.Intn(len(regions))]
				// Skewed offsets create sharing and conflicts.
				var off uint64
				if rng.Intn(3) == 0 {
					off = uint64(rng.Intn(512)) * 8 // hot area: heavy sharing
				} else {
					off = uint64(rng.Intn(int(reg.Size)/8-1)) * 8
				}
				a := reg.Base + simm.Addr(off)
				// Large gaps keep the write buffer drained so timing
				// never changes behavior.
				now += 100000
				switch rng.Intn(10) {
				case 0:
					m.Sync(n, a, now)
					ref.sync(n, a)
				case 1, 2:
					m.Write(n, a, 8, now)
					ref.write(n, a)
				default:
					m.Read(n, a, 8, now)
					ref.read(n, a, 8)
				}
			}

			st := m.Stats()
			if st.L1Misses != ref.l1m {
				t.Errorf("L1 miss tables diverge:\n got %v\n ref %v", st.L1Misses, ref.l1m)
			}
			if st.L2Misses != ref.l2m {
				t.Errorf("L2 miss tables diverge:\n got %v\n ref %v", st.L2Misses, ref.l2m)
			}
			if st.Invalidations != ref.inv {
				t.Errorf("invalidations: got %d, ref %d", st.Invalidations, ref.inv)
			}
		})
	}
}
