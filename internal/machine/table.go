package machine

import "math/bits"

// Open-addressed hash tables keyed by cache-line address, replacing the
// built-in maps that used to sit on the per-reference hot path (the
// per-cache `seen` history, the directory, and the outstanding-prefetch
// set). Line address 0 is never valid — the simulated address space
// keeps its first page unmapped — so 0 doubles as the empty-slot marker
// and no tombstones or occupancy bitmaps are needed. All tables use
// power-of-two capacities with linear probing and grow at ~75% load;
// lookups and inserts on a warm table allocate nothing.

// lineHash spreads line addresses (which share low zero bits and long
// runs of near-sequential values) across the table via a Fibonacci
// multiply. The caller masks the result to the table size.
func lineHash(line uint64) uint64 {
	return line * 0x9E3779B97F4A7C15
}

const tableInitSize = 1024 // slots; must be a power of two

// seenChunkBits sizes the leaves of seenTab: 1<<16 lines (a 64-KB byte
// array) per chunk.
const seenChunkBits = 16

// seenTab maps line -> uint8 with 0-valued absence: a get on a missing
// key returns 0, which the miss classifier reads as "never seen"
// (cold). It backs the per-cache seen history. Because the simulated
// address space is a dense linear span and a running query touches most
// lines of the regions it visits, the history is stored as a two-level
// chunked array indexed by line number — two dependent loads, no
// hashing, no probe chains, no rehash pauses — materializing 64-KB
// leaf chunks only for address ranges actually referenced.
type seenTab struct {
	lineShift uint
	chunks    [][]uint8
}

func newSeenTab(lineSize uint64) *seenTab {
	return &seenTab{lineShift: uint(bits.TrailingZeros64(lineSize))}
}

func (t *seenTab) get(line uint64) uint8 {
	idx := line >> t.lineShift
	ci := idx >> seenChunkBits
	if ci >= uint64(len(t.chunks)) || t.chunks[ci] == nil {
		return 0
	}
	return t.chunks[ci][idx&(1<<seenChunkBits-1)]
}

func (t *seenTab) set(line uint64, v uint8) {
	idx := line >> t.lineShift
	ci := idx >> seenChunkBits
	for ci >= uint64(len(t.chunks)) {
		t.chunks = append(t.chunks, nil)
	}
	c := t.chunks[ci]
	if c == nil {
		c = make([]uint8, 1<<seenChunkBits)
		t.chunks[ci] = c
	}
	c[idx&(1<<seenChunkBits-1)] = v
}

func (t *seenTab) reset() {
	// Drop all history; chunks rematerialize on demand.
	t.chunks = nil
}

// dirTab maps line -> dirEntry, storing entries inline (no per-entry
// allocation). entry() inserts a zero entry on first touch and returns a
// pointer into the backing array; that pointer is invalidated by the
// next entry() call, so callers must not hold one across insertions.
type dirTab struct {
	keys []uint64
	vals []dirEntry
	used int
	mask uint64
}

func newDirTab() *dirTab {
	return &dirTab{
		keys: make([]uint64, tableInitSize),
		vals: make([]dirEntry, tableInitSize),
		mask: tableInitSize - 1,
	}
}

func (t *dirTab) entry(line uint64) *dirEntry {
	i := lineHash(line) & t.mask
	for t.keys[i] != 0 && t.keys[i] != line {
		i = (i + 1) & t.mask
	}
	if t.keys[i] == 0 {
		t.keys[i] = line
		t.used++
		if uint64(t.used)*4 > (t.mask+1)*3 {
			t.grow()
			return t.entry(line)
		}
	}
	return &t.vals[i]
}

// get is the non-inserting lookup: it returns the entry's current value
// (zero if the line was never touched) without mutating the table, so
// concurrent readers — the epoch replay's shadow machines reading base
// directory state — never observe a grow or an insert.
func (t *dirTab) get(line uint64) (dirEntry, bool) {
	i := lineHash(line) & t.mask
	for {
		switch t.keys[i] {
		case line:
			return t.vals[i], true
		case 0:
			return dirEntry{}, false
		}
		i = (i + 1) & t.mask
	}
}

func (t *dirTab) grow() {
	oldK, oldV := t.keys, t.vals
	n := (t.mask + 1) * 2
	t.keys = make([]uint64, n)
	t.vals = make([]dirEntry, n)
	t.mask = n - 1
	for i, k := range oldK {
		if k == 0 {
			continue
		}
		j := lineHash(k) & t.mask
		for t.keys[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = oldV[i]
	}
}

func (t *dirTab) reset() {
	for i := range t.keys {
		t.keys[i] = 0
		t.vals[i] = dirEntry{}
	}
	t.used = 0
}

// timeTab maps line -> int64 with true deletion (backward-shift, so no
// tombstones accumulate). It backs the outstanding-prefetch set, which
// is usually empty: callers gate on len() before probing.
type timeTab struct {
	keys []uint64
	vals []int64
	used int
	mask uint64
}

func newTimeTab() *timeTab {
	return &timeTab{
		keys: make([]uint64, tableInitSize),
		vals: make([]int64, tableInitSize),
		mask: tableInitSize - 1,
	}
}

func (t *timeTab) len() int { return t.used }

func (t *timeTab) get(line uint64) (int64, bool) {
	i := lineHash(line) & t.mask
	for {
		switch t.keys[i] {
		case line:
			return t.vals[i], true
		case 0:
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

func (t *timeTab) set(line uint64, v int64) {
	i := lineHash(line) & t.mask
	for t.keys[i] != 0 && t.keys[i] != line {
		i = (i + 1) & t.mask
	}
	if t.keys[i] == 0 {
		t.keys[i] = line
		t.used++
		if uint64(t.used)*4 > (t.mask+1)*3 {
			t.vals[i] = v
			t.grow()
			return
		}
	}
	t.vals[i] = v
}

// del removes line if present, backward-shifting the probe chain to
// keep lookups correct without tombstones.
func (t *timeTab) del(line uint64) {
	i := lineHash(line) & t.mask
	for {
		switch t.keys[i] {
		case 0:
			return
		case line:
		default:
			i = (i + 1) & t.mask
			continue
		}
		break
	}
	t.used--
	// Backward-shift: walk the cluster after the hole; any entry whose
	// ideal slot is outside (hole, current] moves into the hole.
	j := i
	for {
		j = (j + 1) & t.mask
		if t.keys[j] == 0 {
			break
		}
		h := lineHash(t.keys[j]) & t.mask
		// Move keys[j] into the hole unless its ideal position h lies
		// strictly inside the gap (i, j] in circular order.
		if (j > i && (h <= i || h > j)) || (j < i && (h <= i && h > j)) {
			t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
			i = j
		}
	}
	t.keys[i] = 0
	t.vals[i] = 0
}

func (t *timeTab) grow() {
	oldK, oldV := t.keys, t.vals
	n := (t.mask + 1) * 2
	t.keys = make([]uint64, n)
	t.vals = make([]int64, n)
	t.mask = n - 1
	for i, k := range oldK {
		if k == 0 {
			continue
		}
		j := lineHash(k) & t.mask
		for t.keys[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = oldV[i]
	}
}

func (t *timeTab) reset() {
	for i := range t.keys {
		t.keys[i] = 0
		t.vals[i] = 0
	}
	t.used = 0
}
