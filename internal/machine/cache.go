package machine

import (
	"math/bits"

	"repro/internal/stats"
)

// Absence reasons recorded per line per cache, used to classify the next
// miss on that line (cold if never recorded, conflict if replaced,
// coherence if invalidated by another processor's write).
const (
	absentReplaced    = uint8(1)
	absentInvalidated = uint8(2)
	present           = uint8(3)
)

func classify(seen *seenTab, line uint64) stats.MissKind {
	switch seen.get(line) {
	case absentReplaced:
		return stats.Conf
	case absentInvalidated:
		return stats.Cohe
	default:
		return stats.Cold
	}
}

// setIndex computes (line>>lineShift) % sets, using the mask when the
// set count is a power of two (every standard geometry) and division
// otherwise.
func setIndex(line uint64, lineShift uint, sets, setMask uint64) uint64 {
	s := line >> lineShift
	if setMask != 0 {
		return s & setMask
	}
	return s % sets
}

// l1Cache is a direct-mapped primary cache. It holds no coherence state
// of its own: it is kept inclusive in the node's secondary cache, which
// is where the directory protocol acts.
type l1Cache struct {
	lineSize  uint64
	lineShift uint
	sets      uint64
	setMask   uint64   // sets-1 when sets is a power of two, else 0
	lines     []uint64 // line address per set; 0 = invalid
	seen      *seenTab
	// j, when non-nil, records an undo entry for every mutation — the
	// epoch replay attaches it to the owning processor's caches for the
	// duration of a speculative window (see shadow.go). Nil on every
	// serial path, costing one predictable branch per mutation.
	j *cacheJournal
}

func newL1(bytes, line int) *l1Cache {
	sets := uint64(bytes / line)
	c := &l1Cache{
		lineSize:  uint64(line),
		lineShift: uint(bits.TrailingZeros64(uint64(line))),
		sets:      sets,
		lines:     make([]uint64, sets),
		seen:      newSeenTab(uint64(line)),
	}
	if sets&(sets-1) == 0 {
		c.setMask = sets - 1
	}
	return c
}

func (c *l1Cache) lineOf(a uint64) uint64 { return a &^ (c.lineSize - 1) }
func (c *l1Cache) setOf(line uint64) uint64 {
	return setIndex(line, c.lineShift, c.sets, c.setMask)
}

func (c *l1Cache) lookup(a uint64) bool {
	line := c.lineOf(a)
	return c.lines[c.setOf(line)] == line
}

// fill inserts the line holding a, evicting the direct-mapped victim.
func (c *l1Cache) fill(a uint64) {
	line := c.lineOf(a)
	s := c.setOf(line)
	v := c.lines[s]
	if j := c.j; j != nil {
		j.push(uL1Line, s, v)
		if v != 0 && v != line {
			j.push(uL1Seen, v, uint64(c.seen.get(v)))
		}
		j.push(uL1Seen, line, uint64(c.seen.get(line)))
		j.l1Fills = append(j.l1Fills, s)
	}
	if v != 0 && v != line {
		c.seen.set(v, absentReplaced)
	}
	c.lines[s] = line
	c.seen.set(line, present)
}

// invalidateRange drops any line overlapping [a, a+n) for the given
// reason (coherence invalidation or inclusion-forced replacement).
func (c *l1Cache) invalidateRange(a, n uint64, reason uint8) {
	for line := c.lineOf(a); line < a+n; line += c.lineSize {
		s := c.setOf(line)
		if c.lines[s] == line {
			if j := c.j; j != nil {
				j.push(uL1Line, s, line)
				j.push(uL1Seen, line, uint64(c.seen.get(line)))
			}
			c.lines[s] = 0
			c.seen.set(line, reason)
		}
	}
}

func (c *l1Cache) flush() {
	for i := range c.lines {
		c.lines[i] = 0
	}
	c.seen.reset()
}

// MSI states of a secondary-cache line.
const (
	stInvalid  = uint8(0)
	stShared   = uint8(1)
	stModified = uint8(2)
)

// l2Cache is the set-associative secondary cache; its lines carry the
// MSI coherence state. Recency is a per-set rank permutation (one byte
// per way) rather than a global timestamp array: rank 0 is the LRU
// way, ways-1 the MRU. This is exactly equivalent to timestamp LRU
// with first-lowest-index tie-breaking — the victim scan only runs
// when every way is valid (invalid ways are claimed by the free-slot
// scan first), and among filled ways ranks order exactly as unique
// timestamps would — while costing 1 byte per line instead of 8, which
// is what keeps the warm-cache experiments' 32MB-L2 machines cheap to
// construct.
type l2Cache struct {
	lineSize  uint64
	lineShift uint
	sets      uint64
	setMask   uint64
	ways      int
	tags      []uint64 // sets*ways; 0 = invalid
	state     []uint8
	order     []uint8 // recency rank within the set: 0 = LRU, ways-1 = MRU
	seen      *seenTab
	j         *cacheJournal // speculative-window undo log; nil when serial
}

func newL2(bytes, line, ways int) *l2Cache {
	sets := uint64(bytes / (line * ways))
	n := sets * uint64(ways)
	c := &l2Cache{
		lineSize:  uint64(line),
		lineShift: uint(bits.TrailingZeros64(uint64(line))),
		sets:      sets,
		ways:      ways,
		tags:      make([]uint64, n),
		state:     make([]uint8, n),
		order:     make([]uint8, n),
		seen:      newSeenTab(uint64(line)),
	}
	c.resetOrder()
	if sets&(sets-1) == 0 {
		c.setMask = sets - 1
	}
	return c
}

// resetOrder restores the identity ranking in every set, the flush
// state: untouched ways are evicted lowest-index-first, matching the
// timestamp scan's tie-break over all-zero timestamps.
func (c *l2Cache) resetOrder() {
	for i := range c.order {
		c.order[i] = uint8(i % c.ways)
	}
}

// touch marks slot i most recently used within its set (base is the
// set's first slot): ranks above its old rank slide down one,
// preserving their relative order.
func (c *l2Cache) touch(base, i int) {
	r := c.order[i]
	if int(r) == c.ways-1 {
		return // already MRU; ranks are unchanged
	}
	if j := c.j; j != nil {
		j.pushOrder(c, base)
	}
	for w := 0; w < c.ways; w++ {
		if c.order[base+w] > r {
			c.order[base+w]--
		}
	}
	c.order[i] = uint8(c.ways - 1)
}

func (c *l2Cache) lineOf(a uint64) uint64 { return a &^ (c.lineSize - 1) }
func (c *l2Cache) setOf(line uint64) uint64 {
	return setIndex(line, c.lineShift, c.sets, c.setMask)
}

// find returns the way index of the line, or -1.
func (c *l2Cache) find(line uint64) int {
	base := int(c.setOf(line)) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line && c.state[base+w] != stInvalid {
			return base + w
		}
	}
	return -1
}

// lookup probes for the line and refreshes LRU on a hit, returning the
// line's state (stInvalid on miss).
func (c *l2Cache) lookup(line uint64) uint8 {
	if i := c.find(line); i >= 0 {
		c.touch(i-i%c.ways, i)
		return c.state[i]
	}
	return stInvalid
}

// fill inserts the line in the given state and returns the victim line
// address and state (victim==0 if the slot was free).
func (c *l2Cache) fill(line uint64, st uint8) (victim uint64, victimState uint8) {
	base := int(c.setOf(line)) * c.ways
	slot := -1
	for w := 0; w < c.ways; w++ {
		if c.state[base+w] == stInvalid {
			slot = base + w
			break
		}
	}
	if slot < 0 {
		for w := 0; w < c.ways; w++ {
			if c.order[base+w] == 0 {
				slot = base + w
				break
			}
		}
		victim, victimState = c.tags[slot], c.state[slot]
		if j := c.j; j != nil {
			j.push(uL2Seen, victim, uint64(c.seen.get(victim)))
		}
		c.seen.set(victim, absentReplaced)
	}
	if j := c.j; j != nil {
		j.push(uL2Tag, uint64(slot), c.tags[slot])
		j.push(uL2State, uint64(slot), uint64(c.state[slot]))
		j.push(uL2Seen, line, uint64(c.seen.get(line)))
		j.l2Fills = append(j.l2Fills, uint64(base/c.ways))
	}
	c.tags[slot] = line
	c.state[slot] = st
	c.touch(base, slot)
	c.seen.set(line, present)
	return victim, victimState
}

// setState changes the state of a resident line.
func (c *l2Cache) setState(line uint64, st uint8) {
	if i := c.find(line); i >= 0 {
		if j := c.j; j != nil {
			j.push(uL2State, uint64(i), uint64(c.state[i]))
		}
		c.state[i] = st
	}
}

// invalidate drops the line for a coherence reason.
func (c *l2Cache) invalidate(line uint64) bool {
	if i := c.find(line); i >= 0 {
		if j := c.j; j != nil {
			j.push(uL2State, uint64(i), uint64(c.state[i]))
			j.push(uL2Seen, line, uint64(c.seen.get(line)))
		}
		c.state[i] = stInvalid
		c.seen.set(line, absentInvalidated)
		return true
	}
	return false
}

func (c *l2Cache) flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.state[i] = stInvalid
	}
	c.resetOrder()
	c.seen.reset()
}
