// Package machine models the paper's simulated hardware: a 4-processor
// directory-based cache-coherent NUMA shared-memory multiprocessor. Each
// node has an off-the-shelf processor with a 16-entry write buffer, a
// direct-mapped on-chip primary cache, and a 2-way set-associative
// off-chip secondary cache. A full-bit-vector MSI directory lives at each
// line's home node and the interconnect is a constant-delay network.
// Misses are classified cold/conflict/coherence and attributed to the
// database data structure they fall on.
package machine

import "fmt"

// Config describes one machine instance. The zero value is not valid;
// start from Baseline.
type Config struct {
	Nodes int

	L1Bytes int // primary cache size
	L1Line  int // primary cache line size
	L2Bytes int // secondary cache size
	L2Line  int // secondary cache line size (coherence granularity)
	L2Ways  int // secondary cache associativity

	WriteBufEntries int // coalescing write buffer depth

	// Round-trip latencies (processor cycles) for a primary-cache miss
	// satisfied at each level, exactly as the paper reports them.
	L2HitLat   int64 // satisfied by the secondary cache
	LocalMem   int64 // satisfied by local memory
	Remote2Hop int64 // satisfied by a remote home, clean
	Remote3Hop int64 // satisfied via a third node holding the line dirty

	// DirOccupancy is how long a request occupies its home directory;
	// queueing behind it is the contention the paper models everywhere
	// but the network.
	DirOccupancy int64

	// TransferPerWord is the extra transfer time per 8-byte word by
	// which a miss's round trip grows (or shrinks) when the line is
	// longer (or shorter) than the baseline 32-byte L1 / 64-byte L2
	// lines. The paper's line-size study notes that "each miss takes
	// longer to satisfy, but there are many fewer misses".
	TransferPerWord int64

	// Sequential data prefetching (Section 6): on each access to
	// database data, fetch the next PrefetchDegree primary-cache lines
	// into the primary cache.
	PrefetchData   bool
	PrefetchDegree int

	// SnoopingBus switches the interconnect from the paper's
	// directory-based CC-NUMA to a bus-based snooping SMP (the era's
	// Sequent Symmetry style): every secondary-cache miss arbitrates
	// for one global bus and pays BusLat plus the memory access;
	// invalidations are broadcast for free on the same transaction.
	// Contention concentrates on the single bus rather than on per-home
	// directories.
	SnoopingBus bool
	// BusLat is the bus arbitration+transfer round trip added to each
	// bus transaction, and also the bus occupancy per transaction.
	BusLat int64
}

// Baseline returns the paper's baseline architecture: 4 processors,
// 4-KB direct-mapped L1 with 32-byte lines, 128-KB 2-way L2 with 64-byte
// lines, 16-entry write buffer, 16/80/249/351-cycle round trips.
func Baseline() Config {
	return Config{
		Nodes:           4,
		L1Bytes:         4 << 10,
		L1Line:          32,
		L2Bytes:         128 << 10,
		L2Line:          64,
		L2Ways:          2,
		WriteBufEntries: 16,
		L2HitLat:        16,
		LocalMem:        80,
		Remote2Hop:      249,
		Remote3Hop:      351,
		DirOccupancy:    6,
		TransferPerWord: 2,
		BusLat:          40,
		PrefetchDegree:  4,
	}
}

// WithLineSize returns the config with the secondary line size set to
// l2Line and, as in all the paper's experiments, the primary line size
// set to half of it.
func (c Config) WithLineSize(l2Line int) Config {
	c.L2Line = l2Line
	c.L1Line = l2Line / 2
	return c
}

// WithCacheSizes returns the config with the given cache capacities.
func (c Config) WithCacheSizes(l1, l2 int) Config {
	c.L1Bytes = l1
	c.L2Bytes = l2
	return c
}

// Validate checks structural invariants.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1 || c.Nodes > 16:
		return fmt.Errorf("machine: nodes = %d, want 1..16", c.Nodes)
	case c.L1Line < 8 || c.L1Line&(c.L1Line-1) != 0:
		return fmt.Errorf("machine: L1 line %d not a power of two >= 8", c.L1Line)
	case c.L2Line < c.L1Line || c.L2Line&(c.L2Line-1) != 0:
		return fmt.Errorf("machine: L2 line %d invalid (L1 line %d)", c.L2Line, c.L1Line)
	case c.L1Bytes%c.L1Line != 0:
		return fmt.Errorf("machine: L1 size %d not a multiple of line %d", c.L1Bytes, c.L1Line)
	case c.L2Ways < 1 || c.L2Bytes%(c.L2Line*c.L2Ways) != 0:
		return fmt.Errorf("machine: L2 geometry invalid (%d bytes, %d-byte lines, %d ways)",
			c.L2Bytes, c.L2Line, c.L2Ways)
	case c.WriteBufEntries < 1:
		return fmt.Errorf("machine: write buffer must have at least one entry")
	}
	return nil
}
