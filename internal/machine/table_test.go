package machine

import (
	"math/rand"
	"testing"
)

// The open-addressed tables replace built-in maps on the per-reference
// hot path; this file fuzzes each against a map oracle through growth
// and (for timeTab) backward-shift deletion.

func TestSeenTabAgainstMap(t *testing.T) {
	tab := newSeenTab(64)
	oracle := map[uint64]uint8{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		// Line-address-shaped keys: multiples of 64, clustered, with a
		// far-away band to exercise chunk materialization.
		k := (uint64(rng.Intn(50000)) + 1) * 64
		if rng.Intn(10) == 0 {
			k += 1 << 30
		}
		switch rng.Intn(3) {
		case 0:
			v := uint8(rng.Intn(4))
			tab.set(k, v)
			oracle[k] = v
		default:
			if got, want := tab.get(k), oracle[k]; got != want {
				t.Fatalf("get(%d) = %d, want %d", k, got, want)
			}
		}
	}
	tab.reset()
	for k := range oracle {
		if tab.get(k) != 0 {
			t.Fatalf("reset left key %d", k)
		}
	}
}

func TestTimeTabAgainstMap(t *testing.T) {
	tab := newTimeTab()
	oracle := map[uint64]int64{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300000; i++ {
		k := (uint64(rng.Intn(5000)) + 1) * 32
		switch rng.Intn(4) {
		case 0:
			v := rng.Int63()
			tab.set(k, v)
			oracle[k] = v
		case 1:
			tab.del(k)
			delete(oracle, k)
		default:
			got, ok := tab.get(k)
			want, wantOK := oracle[k]
			if ok != wantOK || got != want {
				t.Fatalf("get(%d) = (%d,%v), want (%d,%v)", k, got, ok, want, wantOK)
			}
		}
		if tab.len() != len(oracle) {
			t.Fatalf("len = %d, oracle has %d", tab.len(), len(oracle))
		}
	}
	// Drain completely through the deletion path.
	for k := range oracle {
		tab.del(k)
	}
	if tab.len() != 0 {
		t.Fatalf("len = %d after drain", tab.len())
	}
}

func TestDirTabEntryStable(t *testing.T) {
	tab := newDirTab()
	// Force growth and verify entries keep their values.
	for i := uint64(1); i <= 5000; i++ {
		e := tab.entry(i * 64)
		e.sharers = uint16(i)
	}
	for i := uint64(1); i <= 5000; i++ {
		if e := tab.entry(i * 64); e.sharers != uint16(i) {
			t.Fatalf("entry %d: sharers = %d", i, e.sharers)
		}
	}
	tab.reset()
	if e := tab.entry(64); e.sharers != 0 {
		t.Fatal("reset did not clear entries")
	}
}
