// Package sched is the execution-driven simulation engine — the role
// Mint plays in the paper. Each simulated processor runs real Go code
// (the database engine) as a coroutine; a global scheduler always
// resumes the processor with the smallest local clock, so every memory
// reference reaches the memory-system model in global timestamp order
// and the interleaving, lock contention, and coherence activity are
// deterministic and emergent.
package sched

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/simm"
	"repro/internal/stats"
)

// Config tunes the cost model of the processor front end.
type Config struct {
	// BusyPerAccess is the busy cycles charged per traced memory
	// reference. It stands in for the non-memory instructions between
	// references and for the private stack/static references that the
	// paper's scaled-down methodology assumes always hit (Section 4.2,
	// correction two).
	BusyPerAccess int64
	// SpinBackoff is the busy-wait cost of one spin iteration on a
	// held metalock.
	SpinBackoff int64
}

// DefaultConfig returns the calibrated front-end cost model.
func DefaultConfig() Config {
	return Config{BusyPerAccess: 3, SpinBackoff: 50}
}

// Engine coordinates the simulated processors.
type Engine struct {
	cfg   Config
	mem   *simm.Memory
	mach  *machine.Machine
	procs []*Proc
	yield chan *Proc

	// Tracer, when set, observes every traced reference in issue order
	// (the address-trace methodology of the paper's Section 4). It runs
	// inside the simulation and must not touch simulated state.
	Tracer func(proc int, a simm.Addr, size int, write bool)
}

// New creates an engine with one processor per machine node.
func New(cfg Config, mem *simm.Memory, mach *machine.Machine) *Engine {
	if cfg.BusyPerAccess < 1 {
		panic("sched: BusyPerAccess must be at least 1")
	}
	e := &Engine{
		cfg:   cfg,
		mem:   mem,
		mach:  mach,
		yield: make(chan *Proc),
	}
	for i := 0; i < mach.Config().Nodes; i++ {
		e.procs = append(e.procs, &Proc{
			id:     i,
			eng:    e,
			resume: make(chan struct{}),
		})
	}
	return e
}

// Procs returns the simulated processors.
func (e *Engine) Procs() []*Proc { return e.procs }

// Mem returns the simulated address space.
func (e *Engine) Mem() *simm.Memory { return e.mem }

// Machine returns the memory-system model.
func (e *Engine) Machine() *machine.Machine { return e.mach }

// Run executes one body per processor to completion, interleaving them
// in simulated-time order. Bodies may be nil for idle processors.
// Clocks and per-processor breakdowns accumulate across calls, so a
// sequence of Runs models back-to-back queries (the warm-cache setups).
func (e *Engine) Run(bodies []func(*Proc)) {
	if len(bodies) != len(e.procs) {
		panic(fmt.Sprintf("sched: %d bodies for %d processors", len(bodies), len(e.procs)))
	}
	active := 0
	for i, body := range bodies {
		if body == nil {
			continue
		}
		active++
		p := e.procs[i]
		p.done = false
		p.started = true
		p.panicVal = nil
		go func(p *Proc, body func(*Proc)) {
			defer func() {
				p.panicVal = recover()
				p.done = true
				e.yield <- p
			}()
			<-p.resume
			body(p)
		}(p, body)
	}
	for active > 0 {
		p, horizon := e.next()
		if p == nil {
			panic("sched: no runnable processor")
		}
		p.horizon = horizon
		p.resume <- struct{}{}
		q := <-e.yield
		if q.done {
			active--
			if q.panicVal != nil {
				// Re-raise a simulated processor's panic in the
				// caller. Sibling processors stay parked; a panic is
				// a fatal configuration or engine bug.
				panic(q.panicVal)
			}
		}
	}
}

// next picks the runnable processor with the smallest clock and returns
// it along with the second-smallest clock: the processor may run ahead
// until its clock passes that horizon without violating global order.
func (e *Engine) next() (*Proc, int64) {
	var best *Proc
	second := int64(1<<63 - 1)
	for _, p := range e.procs {
		if !p.started || p.done {
			continue
		}
		switch {
		case best == nil:
			best = p
		case p.clock < best.clock || (p.clock == best.clock && p.id < best.id):
			second = best.clock
			best = p
		case p.clock < second:
			second = p.clock
		}
	}
	return best, second
}

// AlignClocks advances every processor's clock to the current maximum
// (idle waiting at a barrier). Multi-round stream experiments align
// rounds this way so one round's stragglers do not overlap the next
// round's measurement in simulated time.
func (e *Engine) AlignClocks() {
	var max int64
	for _, p := range e.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	for _, p := range e.procs {
		p.clock = max
	}
}

// ResetBreakdowns clears per-processor time breakdowns and clocks
// (used when an experiment measures only the second of two runs).
func (e *Engine) ResetBreakdowns() {
	for _, p := range e.procs {
		p.clock = 0
		p.bd = stats.CycleBreakdown{}
	}
}

// TotalBreakdown sums the per-processor breakdowns.
func (e *Engine) TotalBreakdown() stats.CycleBreakdown {
	var t stats.CycleBreakdown
	for _, p := range e.procs {
		t.AddAll(&p.bd)
	}
	return t
}

// Proc is one simulated processor. All the database engine's memory
// traffic flows through its Read/Write methods, which both move the
// bytes and charge simulated time.
type Proc struct {
	id       int
	eng      *Engine
	clock    int64
	horizon  int64
	bd       stats.CycleBreakdown
	resume   chan struct{}
	started  bool
	done     bool
	inSync   bool
	panicVal interface{}
}

// ID returns the processor (node) number.
func (p *Proc) ID() int { return p.id }

// Clock returns the processor's local simulated time.
func (p *Proc) Clock() int64 { return p.clock }

// Breakdown returns the processor's accumulated time breakdown.
func (p *Proc) Breakdown() stats.CycleBreakdown { return p.bd }

// maybeYield hands control back to the scheduler once this processor
// has run past the next processor's clock.
func (p *Proc) maybeYield() {
	if p.clock > p.horizon && !p.done {
		p.eng.yield <- p
		<-p.resume
	}
}

// charge applies an access result to the processor's clock, attributing
// the stall to MSync while inside a spinlock acquire/release and to the
// touched data structure otherwise.
func (p *Proc) charge(res machine.AccessResult) {
	p.clock += res.Stall
	if p.inSync {
		p.bd.MSync += uint64(res.Stall)
	} else {
		p.bd.Mem[res.Cat] += uint64(res.Stall)
	}
}

func (p *Proc) preAccess() {
	p.bd.Busy += uint64(p.eng.cfg.BusyPerAccess)
	p.clock += p.eng.cfg.BusyPerAccess
}

func (p *Proc) read(a simm.Addr, size int) {
	if t := p.eng.Tracer; t != nil {
		t(p.id, a, size, false)
	}
	p.preAccess()
	p.charge(p.eng.mach.Read(p.id, a, size, p.clock))
	p.maybeYield()
}

func (p *Proc) write(a simm.Addr, size int) {
	if t := p.eng.Tracer; t != nil {
		t(p.id, a, size, true)
	}
	p.preAccess()
	p.charge(p.eng.mach.Write(p.id, a, size, p.clock))
	p.maybeYield()
}

// Busy charges n cycles of pure computation.
func (p *Proc) Busy(n int64) {
	p.bd.Busy += uint64(n)
	p.clock += n
	p.maybeYield()
}

// Read8 performs a traced 1-byte load.
func (p *Proc) Read8(a simm.Addr) uint8 {
	v := p.eng.mem.Load8(a)
	p.read(a, 1)
	return v
}

// Read16 performs a traced 2-byte load.
func (p *Proc) Read16(a simm.Addr) uint16 {
	v := p.eng.mem.Load16(a)
	p.read(a, 2)
	return v
}

// Read32 performs a traced 4-byte load.
func (p *Proc) Read32(a simm.Addr) uint32 {
	v := p.eng.mem.Load32(a)
	p.read(a, 4)
	return v
}

// Read64 performs a traced 8-byte load.
func (p *Proc) Read64(a simm.Addr) uint64 {
	v := p.eng.mem.Load64(a)
	p.read(a, 8)
	return v
}

// Write8 performs a traced 1-byte store.
func (p *Proc) Write8(a simm.Addr, v uint8) {
	p.eng.mem.Store8(a, v)
	p.write(a, 1)
}

// Write16 performs a traced 2-byte store.
func (p *Proc) Write16(a simm.Addr, v uint16) {
	p.eng.mem.Store16(a, v)
	p.write(a, 2)
}

// Write32 performs a traced 4-byte store.
func (p *Proc) Write32(a simm.Addr, v uint32) {
	p.eng.mem.Store32(a, v)
	p.write(a, 4)
}

// Write64 performs a traced 8-byte store.
func (p *Proc) Write64(a simm.Addr, v uint64) {
	p.eng.mem.Store64(a, v)
	p.write(a, 8)
}

// ReadBytes performs a traced load of n bytes into dst, issuing one
// processor load per 8-byte word the way compiled string/record code
// does.
func (p *Proc) ReadBytes(a simm.Addr, dst []byte, n int) []byte {
	out := p.eng.mem.LoadBytes(a, dst, n)
	for off := 0; off < n; off += 8 {
		w := 8
		if n-off < w {
			w = n - off
		}
		p.read(a+simm.Addr(off), w)
	}
	return out
}

// WriteBytes performs a traced store of src, one word at a time.
func (p *Proc) WriteBytes(a simm.Addr, src []byte) {
	p.eng.mem.StoreBytes(a, src)
	for off := 0; off < len(src); off += 8 {
		w := 8
		if len(src)-off < w {
			w = len(src) - off
		}
		p.write(a+simm.Addr(off), w)
	}
}

// Copy performs a traced memory-to-memory copy of n bytes (load and
// store per word), the pattern of copying a selected tuple from a
// shared buffer into private storage.
func (p *Proc) Copy(dst, src simm.Addr, n int) {
	var buf [8]byte
	for off := 0; off < n; off += 8 {
		w := 8
		if n-off < w {
			w = n - off
		}
		p.eng.mem.LoadBytes(src+simm.Addr(off), buf[:], w)
		p.read(src+simm.Addr(off), w)
		p.eng.mem.StoreBytes(dst+simm.Addr(off), buf[:w])
		p.write(dst+simm.Addr(off), w)
	}
}

// SpinLock is a test-and-test-and-set metalock living in simulated
// shared memory (Postgres95's LockMgrLock and BufMgrLock are these).
type SpinLock struct {
	Addr simm.Addr
}

// Acquire spins until the lock is taken. All cycles spent from the
// first probe to acquisition are MSync, the paper's metalock
// synchronization bucket.
func (p *Proc) Acquire(l SpinLock) {
	p.inSync = true
	mem := p.eng.mem
	for {
		// Test: an ordinary load, so a spinning processor waits in
		// its own cache and misses only when the holder's release
		// invalidates the line.
		p.preAccess()
		p.charge(p.eng.mach.Read(p.id, l.Addr, 4, p.clock))
		v := mem.Load32(l.Addr)
		if v == 0 {
			// Test-and-set: atomic RMW, bypasses the write buffer.
			p.charge(p.eng.mach.Sync(p.id, l.Addr, p.clock))
			if mem.Load32(l.Addr) == 0 {
				mem.Store32(l.Addr, 1)
				break
			}
		}
		// Per-processor jitter keeps deterministic spinners from
		// locking into a starvation-inducing periodic pattern.
		backoff := p.eng.cfg.SpinBackoff + int64(13*p.id)
		p.clock += backoff
		p.bd.MSync += uint64(backoff)
		p.maybeYield()
	}
	p.inSync = false
	p.maybeYield()
}

// Release stores zero with a synchronizing write, invalidating the
// spinners' cached copies.
func (p *Proc) Release(l SpinLock) {
	p.inSync = true
	p.charge(p.eng.mach.Sync(p.id, l.Addr, p.clock))
	p.eng.mem.Store32(l.Addr, 0)
	p.inSync = false
	p.maybeYield()
}
