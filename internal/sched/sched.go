// Package sched is the execution-driven simulation engine — the role
// Mint plays in the paper. Each simulated processor runs real Go code
// (the database engine) as a coroutine; a global scheduler always
// resumes the processor with the smallest local clock, so every memory
// reference reaches the memory-system model in global timestamp order
// and the interleaving, lock contention, and coherence activity are
// deterministic and emergent.
package sched

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/simm"
	"repro/internal/stats"
)

// Config tunes the cost model of the processor front end.
type Config struct {
	// BusyPerAccess is the busy cycles charged per traced memory
	// reference. It stands in for the non-memory instructions between
	// references and for the private stack/static references that the
	// paper's scaled-down methodology assumes always hit (Section 4.2,
	// correction two).
	BusyPerAccess int64
	// SpinBackoff is the busy-wait cost of one spin iteration on a
	// held metalock.
	SpinBackoff int64
}

// DefaultConfig returns the calibrated front-end cost model.
func DefaultConfig() Config {
	return Config{BusyPerAccess: 3, SpinBackoff: 50}
}

// Engine coordinates the simulated processors.
//
// Scheduling is a direct baton pass rather than a central scheduler
// goroutine: the running processor owns the baton, and when its clock
// passes the runnable horizon it repositions itself in a small ring of
// runnable processors sorted by (clock, id). If it is still the
// minimum it just refreshes its horizon and keeps running — no channel
// operation, no goroutine switch. Only when it actually loses the
// min-clock race does it wake the new minimum and park, which costs a
// single handoff instead of the two channel operations per yield (and
// two goroutine switches) of a scheduler-in-the-middle design. Exactly
// one goroutine runs at a time and every handoff synchronizes through
// a channel, so the interleaving is identical to the old engine's and
// race-detector clean.
type Engine struct {
	cfg   Config
	mem   *simm.Memory
	mach  *machine.Machine
	procs []*Proc
	// ring is the runnable set, sorted ascending by (clock, id); the
	// running processor is always ring[0]. Only the running processor
	// (or, between runs, the caller of Run) touches it.
	ring []*Proc
	// finished receives every processor that completes its body; Run
	// counts completions and re-raises panics.
	finished chan *Proc
	// flat is set while RunReplay's single-goroutine driver owns the
	// ring; flatCh is how a lock-op goroutine yields the baton back to
	// it (see RunReplay).
	flat   bool
	flatCh chan *Proc

	// Tracer, when set, observes every traced reference in issue order
	// (the address-trace methodology of the paper's Section 4). It runs
	// inside the simulation and must not touch simulated state.
	Tracer func(proc int, a simm.Addr, size int, write bool)

	// Recorder, when set, observes the engine-level events a trace
	// capture needs to reproduce a run without the executor: data
	// references, explicit busy time, and spinlock acquire/release
	// boundaries (recorded as operations, not as their constituent
	// probes, so a replay under a different memory configuration re-spins
	// them live). Like Tracer it runs inside the simulation and must not
	// touch simulated state.
	Recorder Recorder

	// RecordPure, set together with Recorder, turns a run into a pure
	// capture: every traced accessor records its event and returns
	// before touching the timing model — no busy charge, no machine
	// access, no clock advance, no yield. With clocks frozen the sorted
	// ring degenerates to sequential execution (the head never passes
	// its horizon), so a record-pure Run costs zero goroutine handoffs;
	// spinlocks reduce to their uncontended store (correct because
	// execution is serial) and lock-manager operations still execute
	// their real code. The captured streams equal a live recording's —
	// reference streams are interleaving-invariant for the replayable
	// workloads — and the run's report is then derived by replaying
	// them. The flag is consulted only inside the Recorder != nil
	// branches, so unrecorded runs pay nothing for it.
	RecordPure bool
}

// Recorder receives the engine-level event stream of a recorded run.
// Implementations must treat the calls as read-only observations.
type Recorder interface {
	// Ref observes one traced data reference.
	Ref(proc int, a simm.Addr, size int, write bool)
	// BusyEvent observes an explicit Busy(n) charge.
	BusyEvent(proc int, n int64)
	// SpinAcquire observes entry to a spinlock acquisition (before any
	// spinning happens).
	SpinAcquire(proc int, a simm.Addr)
	// SpinRelease observes a spinlock release.
	SpinRelease(proc int, a simm.Addr)
}

// New creates an engine with one processor per machine node.
func New(cfg Config, mem *simm.Memory, mach *machine.Machine) *Engine {
	if cfg.BusyPerAccess < 1 {
		panic("sched: BusyPerAccess must be at least 1")
	}
	e := &Engine{
		cfg:  cfg,
		mem:  mem,
		mach: mach,
	}
	for i := 0; i < mach.Config().Nodes; i++ {
		e.procs = append(e.procs, &Proc{
			id:   i,
			eng:  e,
			park: make(chan struct{}, 1),
		})
	}
	return e
}

// Procs returns the simulated processors.
func (e *Engine) Procs() []*Proc { return e.procs }

// Mem returns the simulated address space.
func (e *Engine) Mem() *simm.Memory { return e.mem }

// Machine returns the memory-system model.
func (e *Engine) Machine() *machine.Machine { return e.mach }

const horizonMax = int64(1<<63 - 1)

// Run executes one body per processor to completion, interleaving them
// in simulated-time order. Bodies may be nil for idle processors.
// Clocks and per-processor breakdowns accumulate across calls, so a
// sequence of Runs models back-to-back queries (the warm-cache setups).
func (e *Engine) Run(bodies []func(*Proc)) {
	if len(bodies) != len(e.procs) {
		panic(fmt.Sprintf("sched: %d bodies for %d processors", len(bodies), len(e.procs)))
	}
	e.ring = e.ring[:0]
	for i, body := range bodies {
		if body == nil {
			continue
		}
		p := e.procs[i]
		p.done = false
		p.started = true
		p.panicVal = nil
		e.ringInsert(p)
		go func(p *Proc, body func(*Proc)) {
			defer func() {
				p.panicVal = recover()
				p.done = true
				p.complete()
			}()
			<-p.park
			body(p)
		}(p, body)
	}
	active := len(e.ring)
	if active == 0 {
		return
	}
	e.finished = make(chan *Proc, active)
	e.wakeHead()
	for active > 0 {
		q := <-e.finished
		active--
		if q.panicVal != nil {
			// Re-raise a simulated processor's panic in the caller.
			// Sibling processors stay parked; a panic is a fatal
			// configuration or engine bug.
			panic(q.panicVal)
		}
	}
}

// ringInsert adds p to the runnable ring, keeping it sorted ascending
// by (clock, id).
func (e *Engine) ringInsert(p *Proc) {
	i := len(e.ring)
	e.ring = append(e.ring, p)
	for i > 0 && less(p, e.ring[i-1]) {
		e.ring[i] = e.ring[i-1]
		i--
	}
	e.ring[i] = p
}

// less orders runnable processors by (clock, id): the global simulated-
// time order, with processor id as the deterministic tie-break.
func less(a, b *Proc) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.id < b.id)
}

// wakeHead hands the baton to the ring minimum after refreshing its
// horizon (the second-smallest runnable clock: it may run ahead until
// its clock passes that without violating global order).
func (e *Engine) wakeHead() {
	h := e.ring[0]
	if len(e.ring) > 1 {
		h.horizon = e.ring[1].clock
	} else {
		h.horizon = horizonMax
	}
	h.park <- struct{}{}
}

// reschedule is called by the running processor (ring[0]) once its
// clock has passed its horizon: it re-sorts itself into the ring and
// either keeps running with a refreshed horizon — the common case,
// costing no synchronization at all — or wakes the new minimum and
// parks until it wins the clock race again.
func (p *Proc) reschedule() {
	e := p.eng
	// Bubble p (at ring[0]) right to its sorted position.
	i := 0
	for i+1 < len(e.ring) && less(e.ring[i+1], p) {
		e.ring[i] = e.ring[i+1]
		i++
	}
	e.ring[i] = p
	if i == 0 {
		if len(e.ring) > 1 {
			p.horizon = e.ring[1].clock
		} else {
			p.horizon = horizonMax
		}
		return
	}
	if e.flat {
		// Flat replay: the driver owns scheduling. Hand it the baton;
		// it resumes this processor once it is the minimum again.
		e.flatCh <- p
		<-p.park
		return
	}
	e.wakeHead()
	<-p.park
}

// complete retires the running processor from the ring and notifies
// Run; on normal completion it passes the baton to the next minimum.
// After a panic the baton is deliberately dropped — Run re-raises in
// the caller and the siblings stay parked, exactly the fatal-error
// semantics the engine has always had.
func (p *Proc) complete() {
	e := p.eng
	// p is ring[0]: it held the baton. All ring accesses must precede
	// the finished send — once Run observes the last completion it may
	// rebuild the ring for a subsequent Run.
	copy(e.ring, e.ring[1:])
	e.ring = e.ring[:len(e.ring)-1]
	if p.panicVal == nil && len(e.ring) > 0 {
		e.wakeHead()
	}
	e.finished <- p
}

// AlignClocks advances every processor's clock to the current maximum
// (idle waiting at a barrier). Multi-round stream experiments align
// rounds this way so one round's stragglers do not overlap the next
// round's measurement in simulated time.
func (e *Engine) AlignClocks() {
	var max int64
	for _, p := range e.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	for _, p := range e.procs {
		p.clock = max
	}
}

// ResetBreakdowns clears per-processor time breakdowns and clocks
// (used when an experiment measures only the second of two runs).
func (e *Engine) ResetBreakdowns() {
	for _, p := range e.procs {
		p.clock = 0
		p.bd = stats.CycleBreakdown{}
	}
}

// TotalBreakdown sums the per-processor breakdowns.
func (e *Engine) TotalBreakdown() stats.CycleBreakdown {
	var t stats.CycleBreakdown
	for _, p := range e.procs {
		t.AddAll(&p.bd)
	}
	return t
}

// Proc is one simulated processor. All the database engine's memory
// traffic flows through its Read/Write methods, which both move the
// bytes and charge simulated time.
type Proc struct {
	id       int
	eng      *Engine
	clock    int64
	horizon  int64
	bd       stats.CycleBreakdown
	park     chan struct{} // baton: buffered(1), one token per wake
	started  bool
	done     bool
	inSync   bool
	panicVal interface{}

	// Flat-replay driver state: mid-spin acquire progress and whether a
	// lock-op goroutine is executing on this processor's behalf.
	spinAddr simm.Addr
	spinning bool
	inOp     bool
}

// ID returns the processor (node) number.
func (p *Proc) ID() int { return p.id }

// Clock returns the processor's local simulated time.
func (p *Proc) Clock() int64 { return p.clock }

// Breakdown returns the processor's accumulated time breakdown.
func (p *Proc) Breakdown() stats.CycleBreakdown { return p.bd }

// maybeYield re-enters the scheduling race once this processor has run
// past the next processor's clock. In the common case the processor is
// still the minimum and continues immediately without synchronizing.
func (p *Proc) maybeYield() {
	if p.clock > p.horizon {
		p.reschedule()
	}
}

// charge applies an access result to the processor's clock, attributing
// the stall to MSync while inside a spinlock acquire/release and to the
// touched data structure otherwise.
func (p *Proc) charge(res machine.AccessResult) {
	p.clock += res.Stall
	if p.inSync {
		p.bd.MSync += uint64(res.Stall)
	} else {
		p.bd.Mem[res.Cat] += uint64(res.Stall)
	}
}

func (p *Proc) preAccess() {
	p.bd.Busy += uint64(p.eng.cfg.BusyPerAccess)
	p.clock += p.eng.cfg.BusyPerAccess
}

func (p *Proc) read(a simm.Addr, size int) {
	if t := p.eng.Tracer; t != nil {
		t(p.id, a, size, false)
	}
	if r := p.eng.Recorder; r != nil {
		r.Ref(p.id, a, size, false)
		if p.eng.RecordPure {
			return
		}
	}
	p.preAccess()
	p.charge(p.eng.mach.Read(p.id, a, size, p.clock))
	p.maybeYield()
}

// readCat is read with the first byte's category already resolved by
// the combined load (see the Load*Cat accessors of simm.Memory).
func (p *Proc) readCat(a simm.Addr, size int, cat simm.Category) {
	if t := p.eng.Tracer; t != nil {
		t(p.id, a, size, false)
	}
	if r := p.eng.Recorder; r != nil {
		r.Ref(p.id, a, size, false)
		if p.eng.RecordPure {
			return
		}
	}
	p.preAccess()
	p.charge(p.eng.mach.ReadCat(p.id, a, size, p.clock, cat))
	p.maybeYield()
}

func (p *Proc) write(a simm.Addr, size int) {
	if t := p.eng.Tracer; t != nil {
		t(p.id, a, size, true)
	}
	if r := p.eng.Recorder; r != nil {
		r.Ref(p.id, a, size, true)
		if p.eng.RecordPure {
			return
		}
	}
	p.preAccess()
	p.charge(p.eng.mach.Write(p.id, a, size, p.clock))
	p.maybeYield()
}

func (p *Proc) writeCat(a simm.Addr, size int, cat simm.Category) {
	if t := p.eng.Tracer; t != nil {
		t(p.id, a, size, true)
	}
	if r := p.eng.Recorder; r != nil {
		r.Ref(p.id, a, size, true)
		if p.eng.RecordPure {
			return
		}
	}
	p.preAccess()
	p.charge(p.eng.mach.WriteCat(p.id, a, size, p.clock, cat))
	p.maybeYield()
}

// Busy charges n cycles of pure computation.
func (p *Proc) Busy(n int64) {
	if r := p.eng.Recorder; r != nil {
		r.BusyEvent(p.id, n)
		if p.eng.RecordPure {
			return
		}
	}
	p.bd.Busy += uint64(n)
	p.clock += n
	p.maybeYield()
}

// ReplayKind discriminates the events a replay source can produce.
type ReplayKind uint8

const (
	// ReplayRef is one recorded data reference (Addr/Size/Write).
	ReplayRef ReplayKind = iota
	// ReplayBusy charges N cycles of pure computation.
	ReplayBusy
	// ReplaySpinAcquire re-executes a spinlock acquisition at Addr live.
	ReplaySpinAcquire
	// ReplaySpinRelease re-executes a spinlock release at Addr.
	ReplaySpinRelease
	// ReplayOp runs Op — arbitrary recorded synchronization (a
	// lock-manager call) — on the processor via a real goroutine, since
	// it may need to interleave with other processors mid-operation.
	ReplayOp
)

// ReplayEvent is one event pulled from a replay source. Fields beyond
// Kind are valid per kind.
type ReplayEvent struct {
	Kind  ReplayKind
	Addr  simm.Addr
	Size  int
	Write bool
	N     int64
	Op    func(*Proc)
}

// ReplaySource supplies one processor's recorded events in batches. A
// call returns the next batch in stream order; an empty batch means end
// of stream. The driver fully consumes a returned batch before calling
// again, so sources may reuse the backing array — that is what lets a
// decode pipeline run ahead on other goroutines while recycling a fixed
// set of buffers.
type ReplaySource func() ([]ReplayEvent, error)

// RunReplay drives one recorded event source per processor through the
// unchanged timing model on a single goroutine. Sources may be nil for
// idle processors.
//
// Execution needs a coroutine per processor because the database code's
// control flow lives on real stacks, and every baton pass is a channel
// handoff plus two goroutine switches. A recorded stream has no stack:
// the driver below applies events from whichever processor is the
// (clock, id) minimum, replicating the traced accessors' exact charge
// sequences inline, so the handoff cost disappears. The scheduling rule
// is identical — the running processor keeps the baton until its clock
// strictly passes the second-smallest (reschedule's bubble, tie to the
// holder), so every machine access happens at the same global timestamp
// as under Run. The two live-synchronization cases keep their recorded
// yield boundaries: a spin acquire advances one test-and-test-and-set
// iteration per turn (Acquire's per-iteration yield point), and a
// lock-manager op runs real code on a goroutine that hands the baton
// back to the driver whenever it must yield mid-operation. Recorders
// are not consulted during replay.
func (e *Engine) RunReplay(srcs []ReplaySource) error {
	if len(srcs) != len(e.procs) {
		panic(fmt.Sprintf("sched: %d replay sources for %d processors", len(srcs), len(e.procs)))
	}
	// One batch in flight per processor; idx walks it event by event.
	type batchState struct {
		evs []ReplayEvent
		idx int
	}
	batches := make([]batchState, len(e.procs))
	e.ring = e.ring[:0]
	for i, src := range srcs {
		if src == nil {
			continue
		}
		p := e.procs[i]
		p.done = false
		p.started = true
		p.panicVal = nil
		p.spinning = false
		p.inOp = false
		e.ringInsert(p)
	}
	if len(e.ring) == 0 {
		return nil
	}
	if e.flatCh == nil {
		e.flatCh = make(chan *Proc)
	}
	e.flat = true
	defer func() { e.flat = false }()
outer:
	for len(e.ring) > 0 {
		p := e.ring[0]
		// The horizon is the second-smallest runnable clock; it cannot
		// change while p runs (only the head advances), so refreshing it
		// every turn is equivalent to Run's refresh-on-reschedule.
		if len(e.ring) > 1 {
			p.horizon = e.ring[1].clock
		} else {
			p.horizon = horizonMax
		}
		switch {
		case p.inOp:
			// Resume the lock-op goroutine with the baton and wait for
			// it to yield again (mid-op, via reschedule) or finish.
			p.park <- struct{}{}
			q := <-e.flatCh
			if q.panicVal != nil {
				panic(q.panicVal)
			}
			continue
		case p.spinning:
			if p.flatSpinStep() {
				p.spinning = false
			}
		default:
			// Apply events in a tight loop while p stays the head
			// (p.clock <= p.horizon): the ring cannot change while p
			// runs, so re-selecting the head and refreshing the horizon
			// per event — what the pre-batch driver did by falling back
			// to the outer loop — is a per-event no-op this loop skips.
			bs := &batches[p.id]
			for {
				if bs.idx >= len(bs.evs) {
					evs, err := srcs[p.id]()
					if err != nil {
						return err
					}
					if len(evs) == 0 {
						copy(e.ring, e.ring[1:])
						e.ring = e.ring[:len(e.ring)-1]
						continue outer
					}
					bs.evs, bs.idx = evs, 0
				}
				ev := &bs.evs[bs.idx]
				bs.idx++
				switch ev.Kind {
				case ReplayRef:
					p.flatRef(ev.Addr, ev.Size, ev.Write)
				case ReplayBusy:
					p.bd.Busy += uint64(ev.N)
					p.clock += ev.N
				case ReplaySpinAcquire:
					// The first spin iteration runs immediately, like
					// Acquire's loop entry.
					p.spinning, p.spinAddr = true, ev.Addr
					continue outer
				case ReplaySpinRelease:
					p.flatSpinRelease(ev.Addr)
				case ReplayOp:
					p.inOp = true
					go func(p *Proc, op func(*Proc)) {
						defer func() {
							p.panicVal = recover()
							p.inOp = false
							e.flatCh <- p
						}()
						<-p.park
						op(p)
					}(p, ev.Op)
					// Next turn dispatches the inOp branch: p is still
					// the head, so the op starts before anyone else
					// runs.
					continue outer
				}
				if p.clock > p.horizon {
					break
				}
			}
		}
		// The traced accessors end in maybeYield; mirror it (reschedule's
		// bubble, minus the parking — the driver simply picks the new
		// head next turn).
		if p.clock > p.horizon {
			i := 0
			for i+1 < len(e.ring) && less(e.ring[i+1], p) {
				e.ring[i] = e.ring[i+1]
				i++
			}
			e.ring[i] = p
		}
	}
	return nil
}

// flatRef re-issues one recorded data reference on the driver's
// goroutine: the traced accessors' exact busy charge, timing-model
// access, and stall attribution, minus the yield (the driver re-sorts
// after every event).
func (p *Proc) flatRef(a simm.Addr, size int, write bool) {
	if t := p.eng.Tracer; t != nil {
		t(p.id, a, size, write)
	}
	p.preAccess()
	if write {
		p.charge(p.eng.mach.Write(p.id, a, size, p.clock))
	} else {
		p.charge(p.eng.mach.Read(p.id, a, size, p.clock))
	}
}

// flatSpinStep performs one iteration of Acquire's test-and-test-and-
// set loop — charge for charge — and reports whether the lock was
// taken. One iteration per driver turn reproduces Acquire's
// per-iteration yield point.
func (p *Proc) flatSpinStep() bool {
	a := p.spinAddr
	mem := p.eng.mem
	p.inSync = true
	p.preAccess()
	p.charge(p.eng.mach.Read(p.id, a, 4, p.clock))
	if mem.Load32(a) == 0 {
		p.charge(p.eng.mach.Sync(p.id, a, p.clock))
		if mem.Load32(a) == 0 {
			mem.Store32(a, 1)
			p.inSync = false
			return true
		}
	}
	backoff := p.eng.cfg.SpinBackoff + int64(13*p.id)
	p.clock += backoff
	p.bd.MSync += uint64(backoff)
	return false
}

// flatSpinRelease mirrors Release without the trailing yield.
func (p *Proc) flatSpinRelease(a simm.Addr) {
	p.inSync = true
	p.charge(p.eng.mach.Sync(p.id, a, p.clock))
	p.eng.mem.Store32(a, 0)
	p.inSync = false
}

// Read8 performs a traced 1-byte load.
func (p *Proc) Read8(a simm.Addr) uint8 {
	v, cat := p.eng.mem.Load8Cat(a)
	p.readCat(a, 1, cat)
	return v
}

// Read16 performs a traced 2-byte load.
func (p *Proc) Read16(a simm.Addr) uint16 {
	v, cat := p.eng.mem.Load16Cat(a)
	p.readCat(a, 2, cat)
	return v
}

// Read32 performs a traced 4-byte load.
func (p *Proc) Read32(a simm.Addr) uint32 {
	v, cat := p.eng.mem.Load32Cat(a)
	p.readCat(a, 4, cat)
	return v
}

// Read64 performs a traced 8-byte load.
func (p *Proc) Read64(a simm.Addr) uint64 {
	v, cat := p.eng.mem.Load64Cat(a)
	p.readCat(a, 8, cat)
	return v
}

// Write8 performs a traced 1-byte store.
func (p *Proc) Write8(a simm.Addr, v uint8) {
	p.writeCat(a, 1, p.eng.mem.Store8Cat(a, v))
}

// Write16 performs a traced 2-byte store.
func (p *Proc) Write16(a simm.Addr, v uint16) {
	p.writeCat(a, 2, p.eng.mem.Store16Cat(a, v))
}

// Write32 performs a traced 4-byte store.
func (p *Proc) Write32(a simm.Addr, v uint32) {
	p.writeCat(a, 4, p.eng.mem.Store32Cat(a, v))
}

// Write64 performs a traced 8-byte store.
func (p *Proc) Write64(a simm.Addr, v uint64) {
	p.writeCat(a, 8, p.eng.mem.Store64Cat(a, v))
}

// ReadBytes performs a traced load of n bytes into dst, issuing one
// processor load per 8-byte word the way compiled string/record code
// does.
func (p *Proc) ReadBytes(a simm.Addr, dst []byte, n int) []byte {
	out := p.eng.mem.LoadBytes(a, dst, n)
	for off := 0; off < n; off += 8 {
		w := 8
		if n-off < w {
			w = n - off
		}
		p.read(a+simm.Addr(off), w)
	}
	return out
}

// WriteBytes performs a traced store of src, one word at a time.
func (p *Proc) WriteBytes(a simm.Addr, src []byte) {
	p.eng.mem.StoreBytes(a, src)
	for off := 0; off < len(src); off += 8 {
		w := 8
		if len(src)-off < w {
			w = len(src) - off
		}
		p.write(a+simm.Addr(off), w)
	}
}

// Copy performs a traced memory-to-memory copy of n bytes (load and
// store per word), the pattern of copying a selected tuple from a
// shared buffer into private storage.
func (p *Proc) Copy(dst, src simm.Addr, n int) {
	var buf [8]byte
	for off := 0; off < n; off += 8 {
		w := 8
		if n-off < w {
			w = n - off
		}
		p.eng.mem.LoadBytes(src+simm.Addr(off), buf[:], w)
		p.read(src+simm.Addr(off), w)
		p.eng.mem.StoreBytes(dst+simm.Addr(off), buf[:w])
		p.write(dst+simm.Addr(off), w)
	}
}

// SpinLock is a test-and-test-and-set metalock living in simulated
// shared memory (Postgres95's LockMgrLock and BufMgrLock are these).
type SpinLock struct {
	Addr simm.Addr
}

// Acquire spins until the lock is taken. All cycles spent from the
// first probe to acquisition are MSync, the paper's metalock
// synchronization bucket.
func (p *Proc) Acquire(l SpinLock) {
	if r := p.eng.Recorder; r != nil {
		r.SpinAcquire(p.id, l.Addr)
		if p.eng.RecordPure {
			// Serial execution: the lock is free by construction, so
			// the acquisition is just the winning store.
			p.eng.mem.Store32(l.Addr, 1)
			return
		}
	}
	p.inSync = true
	mem := p.eng.mem
	for {
		// Test: an ordinary load, so a spinning processor waits in
		// its own cache and misses only when the holder's release
		// invalidates the line.
		p.preAccess()
		p.charge(p.eng.mach.Read(p.id, l.Addr, 4, p.clock))
		v := mem.Load32(l.Addr)
		if v == 0 {
			// Test-and-set: atomic RMW, bypasses the write buffer.
			p.charge(p.eng.mach.Sync(p.id, l.Addr, p.clock))
			if mem.Load32(l.Addr) == 0 {
				mem.Store32(l.Addr, 1)
				break
			}
		}
		// Per-processor jitter keeps deterministic spinners from
		// locking into a starvation-inducing periodic pattern.
		backoff := p.eng.cfg.SpinBackoff + int64(13*p.id)
		p.clock += backoff
		p.bd.MSync += uint64(backoff)
		p.maybeYield()
	}
	p.inSync = false
	p.maybeYield()
}

// Release stores zero with a synchronizing write, invalidating the
// spinners' cached copies.
func (p *Proc) Release(l SpinLock) {
	if r := p.eng.Recorder; r != nil {
		r.SpinRelease(p.id, l.Addr)
		if p.eng.RecordPure {
			p.eng.mem.Store32(l.Addr, 0)
			return
		}
	}
	p.inSync = true
	p.charge(p.eng.mach.Sync(p.id, l.Addr, p.clock))
	p.eng.mem.Store32(l.Addr, 0)
	p.inSync = false
	p.maybeYield()
}
