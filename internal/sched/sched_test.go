package sched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/simm"
)

func rig(t *testing.T, nodes int) (*Engine, simm.Addr, simm.Addr) {
	t.Helper()
	cfg := machine.Baseline()
	cfg.Nodes = nodes
	mem := simm.New(nodes)
	shared := mem.AllocRegion("shared", 1<<16, simm.CatData, simm.AnyNode)
	lock := mem.AllocRegion("lock", simm.PageSize, simm.CatLockSLock, 0)
	m, err := machine.New(cfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	return New(DefaultConfig(), mem, m), shared.Base, lock.Base
}

func TestSingleProcReadWrite(t *testing.T) {
	e, data, _ := rig(t, 1)
	e.Run([]func(*Proc){func(p *Proc) {
		p.Write64(data, 42)
		if v := p.Read64(data); v != 42 {
			t.Errorf("read %d, want 42", v)
		}
		p.Write32(data+8, 7)
		if v := p.Read32(data + 8); v != 7 {
			t.Errorf("read %d, want 7", v)
		}
	}})
	p := e.Procs()[0]
	if p.Clock() == 0 {
		t.Error("clock did not advance")
	}
	bd := p.Breakdown()
	if bd.Busy == 0 {
		t.Error("no busy cycles charged")
	}
}

func TestBusyCharging(t *testing.T) {
	e, _, _ := rig(t, 1)
	e.Run([]func(*Proc){func(p *Proc) { p.Busy(123) }})
	if got := e.Procs()[0].Breakdown().Busy; got != 123 {
		t.Errorf("busy = %d, want 123", got)
	}
	if got := e.Procs()[0].Clock(); got != 123 {
		t.Errorf("clock = %d, want 123", got)
	}
}

func TestMemStallAttribution(t *testing.T) {
	e, data, _ := rig(t, 1)
	e.Run([]func(*Proc){func(p *Proc) {
		p.Read64(data) // cold miss
	}})
	bd := e.Procs()[0].Breakdown()
	if bd.Mem[simm.CatData] == 0 {
		t.Error("read miss stall not attributed to Data")
	}
	if bd.MSync != 0 {
		t.Error("MSync charged outside synchronization")
	}
}

func TestSpinlockMutualExclusion(t *testing.T) {
	const nodes, iters = 4, 300
	e, data, lock := rig(t, nodes)
	l := SpinLock{Addr: lock}
	bodies := make([]func(*Proc), nodes)
	for i := range bodies {
		bodies[i] = func(p *Proc) {
			for k := 0; k < iters; k++ {
				p.Acquire(l)
				v := p.Read64(data)
				p.Busy(10)
				p.Write64(data, v+1)
				p.Release(l)
			}
		}
	}
	e.Run(bodies)
	if got := e.Mem().Load64(data); got != nodes*iters {
		t.Errorf("counter = %d, want %d (mutual exclusion violated)", got, nodes*iters)
	}
	// Contended locking must show up as MSync on at least one processor.
	var msync uint64
	for _, p := range e.Procs() {
		msync += p.Breakdown().MSync
	}
	if msync == 0 {
		t.Error("no MSync recorded under contention")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e, data, lock := rig(t, 4)
		l := SpinLock{Addr: lock}
		bodies := make([]func(*Proc), 4)
		for i := range bodies {
			i := i
			bodies[i] = func(p *Proc) {
				for k := 0; k < 100; k++ {
					p.Acquire(l)
					v := p.Read64(data)
					p.Write64(data, v+uint64(i+1))
					p.Release(l)
					p.Read64(data + simm.Addr(8*(k%100)))
				}
			}
		}
		e.Run(bodies)
		var clocks []int64
		for _, p := range e.Procs() {
			clocks = append(clocks, p.Clock())
		}
		return clocks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: run1=%v run2=%v", a, b)
		}
	}
}

func TestInterleavingIsTimeOrdered(t *testing.T) {
	// Two processors alternate writes to a shared log; with equal costs
	// per event the log must interleave rather than run one processor
	// to completion first.
	e, data, _ := rig(t, 2)
	var order []int
	bodies := []func(*Proc){
		func(p *Proc) {
			for k := 0; k < 5; k++ {
				p.Busy(100)
				order = append(order, 0)
			}
		},
		func(p *Proc) {
			for k := 0; k < 5; k++ {
				p.Busy(100)
				order = append(order, 1)
			}
		},
	}
	e.Run(bodies)
	_ = data
	switched := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switched++
		}
	}
	if switched < 4 {
		t.Errorf("processors did not interleave: order=%v", order)
	}
}

func TestCopyMovesData(t *testing.T) {
	e, data, _ := rig(t, 1)
	e.Run([]func(*Proc){func(p *Proc) {
		p.WriteBytes(data, []byte("hello, world!xyz"))
		p.Copy(data+1024, data, 16)
		buf := make([]byte, 16)
		got := p.ReadBytes(data+1024, buf, 16)
		if string(got) != "hello, world!xyz" {
			t.Errorf("copy result %q", got)
		}
	}})
}

func TestSequentialRunsAccumulate(t *testing.T) {
	e, data, _ := rig(t, 2)
	body := func(p *Proc) { p.Read64(data) }
	e.Run([]func(*Proc){body, nil})
	c1 := e.Procs()[0].Clock()
	e.Run([]func(*Proc){body, nil})
	if c2 := e.Procs()[0].Clock(); c2 <= c1 {
		t.Errorf("second run did not accumulate: %d then %d", c1, c2)
	}
	e.ResetBreakdowns()
	if e.Procs()[0].Clock() != 0 {
		t.Error("ResetBreakdowns did not clear clocks")
	}
}

func TestTotalBreakdown(t *testing.T) {
	e, data, _ := rig(t, 2)
	e.Run([]func(*Proc){
		func(p *Proc) { p.Busy(50); p.Read64(data) },
		func(p *Proc) { p.Busy(70) },
	})
	total := e.TotalBreakdown()
	if total.Busy < 120 {
		t.Errorf("total busy = %d, want >= 120", total.Busy)
	}
	if total.MemTotal() == 0 {
		t.Error("no memory stall in total")
	}
}

func TestReadWriteBytesWordGranularity(t *testing.T) {
	e, data, _ := rig(t, 1)
	e.Run([]func(*Proc){func(p *Proc) {
		src := make([]byte, 100)
		for i := range src {
			src[i] = byte(i)
		}
		p.WriteBytes(data, src)
		buf := make([]byte, 100)
		got := p.ReadBytes(data, buf, 100)
		for i := range src {
			if got[i] != src[i] {
				t.Fatalf("byte %d: %d != %d", i, got[i], src[i])
			}
		}
	}})
	// 100 bytes = 13 word stores + 13 word loads.
	st := e.Machine().Stats()
	if st.Writes != 13 {
		t.Errorf("writes = %d, want 13", st.Writes)
	}
	if st.Reads < 13 {
		t.Errorf("reads = %d, want >= 13", st.Reads)
	}
}

func TestAlignClocks(t *testing.T) {
	e, _, _ := rig(t, 3)
	e.Run([]func(*Proc){
		func(p *Proc) { p.Busy(100) },
		func(p *Proc) { p.Busy(500) },
		func(p *Proc) { p.Busy(300) },
	})
	e.AlignClocks()
	for i, p := range e.Procs() {
		if p.Clock() != 500 {
			t.Errorf("proc %d clock = %d, want 500", i, p.Clock())
		}
	}
}

func TestTracerObservesAccesses(t *testing.T) {
	e, data, _ := rig(t, 1)
	var reads, writes int
	e.Tracer = func(proc int, a simm.Addr, size int, write bool) {
		if write {
			writes++
		} else {
			reads++
		}
	}
	e.Run([]func(*Proc){func(p *Proc) {
		p.Write64(data, 1)
		p.Read64(data)
		p.Read32(data + 8)
	}})
	if reads != 2 || writes != 1 {
		t.Errorf("tracer saw %d reads, %d writes", reads, writes)
	}
}
