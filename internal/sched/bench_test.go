package sched

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/simm"
)

func benchEngine(b *testing.B, nodes int) (*Engine, simm.Addr, simm.Addr) {
	b.Helper()
	cfg := machine.Baseline()
	cfg.Nodes = nodes
	mem := simm.New(nodes)
	data := mem.AllocRegion("data", 16<<20, simm.CatData, simm.AnyNode)
	lock := mem.AllocRegion("lock", simm.PageSize, simm.CatLockSLock, 0)
	m, err := machine.New(cfg, mem)
	if err != nil {
		b.Fatal(err)
	}
	return New(DefaultConfig(), mem, m), data.Base, lock.Base
}

func BenchmarkTracedRead(b *testing.B) {
	e, data, _ := benchEngine(b, 1)
	e.Run([]func(*Proc){func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Read64(data + simm.Addr((i*8)%(8<<20)))
		}
	}})
}

func BenchmarkTracedReadFourProcs(b *testing.B) {
	e, data, _ := benchEngine(b, 4)
	bodies := make([]func(*Proc), 4)
	for k := range bodies {
		k := k
		bodies[k] = func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				p.Read64(data + simm.Addr(((i+k*1000)*8)%(8<<20)))
			}
		}
	}
	e.Run(bodies)
}

func BenchmarkSpinLockUncontended(b *testing.B) {
	e, _, lock := benchEngine(b, 1)
	l := SpinLock{Addr: lock}
	e.Run([]func(*Proc){func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Acquire(l)
			p.Release(l)
		}
	}})
}

func BenchmarkSpinLockContended(b *testing.B) {
	e, _, lock := benchEngine(b, 4)
	l := SpinLock{Addr: lock}
	bodies := make([]func(*Proc), 4)
	for k := range bodies {
		bodies[k] = func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				p.Acquire(l)
				p.Busy(10)
				p.Release(l)
			}
		}
	}
	e.Run(bodies)
}
