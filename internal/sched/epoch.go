package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/simm"
	"repro/internal/stats"
)

// Epoch-windowed parallel replay. RunReplayParallel executes the same
// recorded streams as RunReplay with byte-identical results, but uses
// multiple host cores inside a single replay: the timeline is cut into
// clock windows [E1, E2), and a window whose per-processor footprints
// are provably disjoint runs its streams concurrently on shadow machine
// state (see machine/shadow.go) and commits wholesale. A window with a
// lock-manager op, overlapping page footprints, or a failed commit
// validation runs (or re-runs) under the flat serial driver for exactly
// that window, so correctness never depends on the speculation being
// right.
//
// The soundness chain:
//
//   - A cheap pre-scan walks each processor's buffered events
//     accumulating a lower bound on its clock (every event charges at
//     least its busy cycles), stamping the pages of every event whose
//     bound is still below E2. An event the pre-scan did not stamp has
//     bound ≥ E2, hence issues at clock ≥ E2, hence is not executed
//     this window — the stamped set is a superset of the window's real
//     footprint (FuzzEpochFootprint pins this).
//   - Footprint disjointness means no processor reads or writes a page
//     another processor touches before E2, so per-processor event
//     streams are independent up to the shared timing state — the
//     directory, the occupancy clocks, and remote caches — which the
//     shadows virtualize and CommitWindow validates in (clock, id)
//     issue order. Any window where concurrent execution could have
//     diverged from the serial interleaving fails validation and is
//     re-run serially.
//   - Spinlocks stay eligible: a lock word's page is stamped like any
//     other, so a lock touched by two processors in one window forces
//     that window serial automatically, and a single-toucher spin
//     (including a processor spinning on a lock whose release lies
//     beyond E2) replays exactly as the flat driver would.
//
// The window width adapts: it grows after each committed parallel
// window and shrinks when validation aborts one.
const (
	winStart = int64(4096)
	winMin   = int64(1024)
	winMax   = int64(65536)
)

// Epoch replay counters (process-wide, atomic), surfaced as gauges by
// the experiments layer and consulted by tests that must prove the
// speculative path actually ran: windows committed in parallel, windows
// classified serial up front (footprint overlap, lock-manager op, or a
// lone in-window processor), and windows that failed commit validation
// (each aborted window also re-runs serially but is counted only here).
var (
	epochParallelWindows atomic.Uint64
	epochSerialWindows   atomic.Uint64
	epochAbortedWindows  atomic.Uint64
)

// EpochStats returns the process-wide epoch replay window counters.
func EpochStats() (parallel, serial, aborted uint64) {
	return epochParallelWindows.Load(), epochSerialWindows.Load(), epochAbortedWindows.Load()
}

// RunReplayParallel is RunReplay with epoch-windowed parallel execution
// across workers host goroutines. workers <= 1 — and any configuration
// the parallel driver does not model: an attached Tracer (issue-order
// observation), hardware prefetching (asynchronous cross-page fills),
// or a machine with fewer than two processors — degrades to the flat
// serial driver.
func (e *Engine) RunReplayParallel(srcs []ReplaySource, workers int) error {
	if len(srcs) != len(e.procs) {
		panic(fmt.Sprintf("sched: %d replay sources for %d processors", len(srcs), len(e.procs)))
	}
	if workers <= 1 || e.Tracer != nil || e.mach.Config().PrefetchData || len(e.procs) < 2 {
		return e.RunReplay(srcs)
	}
	r := &epochRunner{
		e:          e,
		srcs:       srcs,
		workers:    workers,
		bufs:       make([]winBuf, len(e.procs)),
		snaps:      make([]procSnap, len(e.procs)),
		memLogs:    make([][]memWrite, len(e.procs)),
		panics:     make([]interface{}, len(e.procs)),
		shadows:    make([]*machine.Shadow, len(e.procs)),
		winShadows: make([]*machine.Shadow, len(e.procs)),
	}
	r.pages.init()
	r.pagesFn = func(node int, page uint64) bool {
		return r.pages.ownerOf(page) == int32(node)
	}
	for i, src := range srcs {
		if src == nil {
			continue
		}
		p := e.procs[i]
		p.done = false
		p.started = true
		p.panicVal = nil
		p.spinning = false
		p.inOp = false
		r.active = append(r.active, p)
	}
	if len(r.active) < 2 {
		return e.RunReplay(srcs)
	}
	defer r.stopWorkers()
	return r.run()
}

// memWrite is one journaled simulated-memory store (a spin-word
// transition) for rollback of an aborted window.
type memWrite struct {
	addr simm.Addr
	old  uint32
}

// winBuf holds one processor's decoded-but-unissued events. The flat
// driver consumes source batches in place; the window driver cannot
// (sources recycle their backing arrays, and a window may end mid-
// batch), so batches are copied in and compacted as they drain.
type winBuf struct {
	evs  []ReplayEvent
	head int
	eof  bool
}

// refill compacts the buffer and appends the source's next batch,
// reporting whether any events arrived (false means end of stream).
func (b *winBuf) refill(src ReplaySource) (bool, error) {
	if b.head > 0 {
		b.evs = append(b.evs[:0], b.evs[b.head:]...)
		b.head = 0
	}
	evs, err := src()
	if err != nil {
		return false, err
	}
	if len(evs) == 0 {
		b.eof = true
		return false, nil
	}
	b.evs = append(b.evs, evs...)
	return true, nil
}

// procSnap is the processor-local state restored when a speculative
// window aborts.
type procSnap struct {
	clock    int64
	bd       stats.CycleBreakdown
	inSync   bool
	spinning bool
	spinAddr simm.Addr
	head     int
}

// pageClaims maps page number -> claiming processor for one window,
// generation-stamped so a window reset is a counter bump. It detects
// footprint overlap during the pre-scan and answers CommitWindow's
// footprint queries during validation.
type pageClaims struct {
	keys  []uint64
	owner []int32
	gen   []uint32
	cur   uint32
	mask  uint64
	used  int
}

const pageClaimsInitSize = 512

func (c *pageClaims) init() {
	c.keys = make([]uint64, pageClaimsInitSize)
	c.owner = make([]int32, pageClaimsInitSize)
	c.gen = make([]uint32, pageClaimsInitSize)
	c.mask = pageClaimsInitSize - 1
	c.cur = 1
}

func (c *pageClaims) reset() {
	c.cur++
	c.used = 0
}

// claim records node's claim on page, reporting whether another node
// already holds it (a footprint conflict).
func (c *pageClaims) claim(page uint64, node int32) (conflict bool) {
	i := (page * 0x9E3779B97F4A7C15) & c.mask
	for c.gen[i] == c.cur && c.keys[i] != page {
		i = (i + 1) & c.mask
	}
	if c.gen[i] == c.cur {
		return c.owner[i] != node
	}
	c.keys[i], c.owner[i], c.gen[i] = page, node, c.cur
	c.used++
	if uint64(c.used)*4 > (c.mask+1)*3 {
		c.grow()
	}
	return false
}

func (c *pageClaims) ownerOf(page uint64) int32 {
	i := (page * 0x9E3779B97F4A7C15) & c.mask
	for c.gen[i] == c.cur {
		if c.keys[i] == page {
			return c.owner[i]
		}
		i = (i + 1) & c.mask
	}
	return -1
}

func (c *pageClaims) grow() {
	oldK, oldO, oldG := c.keys, c.owner, c.gen
	n := (c.mask + 1) * 2
	c.keys = make([]uint64, n)
	c.owner = make([]int32, n)
	c.gen = make([]uint32, n)
	c.mask = n - 1
	for i, g := range oldG {
		if g != c.cur {
			continue
		}
		j := (oldK[i] * 0x9E3779B97F4A7C15) & c.mask
		for c.gen[j] == c.cur {
			j = (j + 1) & c.mask
		}
		c.keys[j], c.owner[j], c.gen[j] = oldK[i], oldO[i], c.cur
	}
}

// epochRunner is the coordinator state of one RunReplayParallel call.
type epochRunner struct {
	e       *Engine
	srcs    []ReplaySource
	workers int
	active  []*Proc

	bufs      []winBuf
	snaps     []procSnap
	memLogs   [][]memWrite
	panics    []interface{}
	shadows   []*machine.Shadow // lazily created, indexed by node
	pages     pageClaims
	pagesFn   func(node int, page uint64) bool
	spinAddrs []simm.Addr // lock words seen by the current pre-scan

	winShadows []*machine.Shadow // CommitWindow argument, indexed by node
	inWin      []*Proc
	tieBuf     []int64

	tasks chan shadowTask
	wg    sync.WaitGroup
}

type shadowTask struct {
	p  *Proc
	e2 int64
}

func (r *epochRunner) stopWorkers() {
	if r.tasks != nil {
		close(r.tasks)
		r.tasks = nil
	}
}

func (r *epochRunner) run() error {
	// The runnable ring is persistent across windows: the flat driver's
	// scheduling rule lets the baton holder keep running through exact
	// clock ties, so the interleaving at a tie depends on who currently
	// holds the baton — state a per-window rebuild of the ring would
	// destroy (the rebuilt ring puts the lowest id first, the flat
	// driver keeps the incumbent). Serial windows therefore resume the
	// ring exactly where the previous window left it; only a committed
	// parallel window rebuilds it, and such windows refuse to commit
	// with any clock tie among live processors outstanding.
	r.buildRing()
	w := winStart
	for len(r.active) > 0 {
		e1 := r.active[0].clock
		for _, p := range r.active[1:] {
			if p.clock < e1 {
				e1 = p.clock
			}
		}
		if len(r.active) == 1 {
			// One stream left: windowing buys nothing. Run it flat to
			// completion (the serial runner streams its refills, so no
			// whole-trace buffering happens).
			if err := r.runSerial(horizonMax); err != nil {
				return err
			}
			r.filterDone()
			continue
		}
		e2 := e1 + w
		parallel, err := r.prescan(e2)
		if err != nil {
			return err
		}
		if parallel && len(r.inWin) >= 2 {
			if r.runParallel(e2) {
				epochParallelWindows.Add(1)
				if w < winMax {
					w *= 2
				}
				r.filterDone()
				r.buildRing()
				continue
			}
			// Validation aborted: the window really was contended.
			// Narrow the next ones and re-run this one serially.
			epochAbortedWindows.Add(1)
			if w > winMin {
				w /= 2
			}
		} else {
			epochSerialWindows.Add(1)
		}
		if err := r.runSerial(e2); err != nil {
			return err
		}
		r.filterDone()
	}
	return nil
}

// buildRing rebuilds the runnable ring (clock, id)-sorted from the
// active set. Sound only when no two active processors share a clock
// (or at the very start, where the sorted order is by construction the
// flat driver's initial state).
func (r *epochRunner) buildRing() {
	e := r.e
	e.ring = e.ring[:0]
	for _, p := range r.active {
		e.ringInsert(p)
	}
}

// filterDone drops processors whose stream is exhausted and whose
// engine state is quiescent (not mid-spin, not mid-op).
func (r *epochRunner) filterDone() {
	live := r.active[:0]
	for _, p := range r.active {
		b := &r.bufs[p.id]
		if b.head >= len(b.evs) && b.eof && !p.spinning && !p.inOp {
			continue
		}
		live = append(live, p)
	}
	r.active = live
}

// prescan buffers and classifies the window [*, e2): it fills each
// in-window processor's buffer until the clock lower bound passes e2,
// stamps the page footprint of every event that might issue, and
// reports whether the window is eligible for parallel execution. A
// report of false is always safe — the serial runner needs nothing from
// the scan.
func (r *epochRunner) prescan(e2 int64) (bool, error) {
	r.pages.reset()
	r.spinAddrs = r.spinAddrs[:0]
	r.inWin = r.inWin[:0]
	busy := r.e.cfg.BusyPerAccess
	parallel := true
	for _, p := range r.active {
		if p.clock >= e2 {
			continue // beyond this window (a previous op overran); idle
		}
		r.inWin = append(r.inWin, p)
		if p.inOp {
			// Cannot happen — serial windows run until every op
			// completes — but an op mid-flight could never be suspended
			// into a shadow, so classify defensively.
			parallel = false
		}
		if p.spinning {
			// A processor that enters the window mid-acquire touches its
			// lock word before consuming any event.
			parallel = parallel && !r.stampSpin(p.id, p.spinAddr)
		}
		b := &r.bufs[p.id]
		est := p.clock
		i := b.head
		for est < e2 {
			if i >= len(b.evs) {
				if b.eof {
					break
				}
				h := b.head
				got, err := b.refill(r.srcs[p.id])
				if err != nil {
					return false, err
				}
				i -= h // refill compacted the buffer
				if !got {
					break
				}
			}
			ev := &b.evs[i]
			i++
			switch ev.Kind {
			case ReplayRef:
				pg := uint64(ev.Addr) >> simm.PageShift
				parallel = parallel && !r.pages.claim(pg, int32(p.id))
				if lpg := (uint64(ev.Addr) + uint64(ev.Size) - 1) >> simm.PageShift; lpg != pg {
					parallel = parallel && !r.pages.claim(lpg, int32(p.id))
				}
				est += busy
			case ReplayBusy:
				est += ev.N
			case ReplaySpinAcquire, ReplaySpinRelease:
				parallel = parallel && !r.stampSpin(p.id, ev.Addr)
				if ev.Kind == ReplaySpinAcquire {
					est += busy
				}
			case ReplayOp:
				// Lock-manager code runs live on a goroutine and may
				// interleave with any processor mid-operation: serial.
				parallel = false
			}
		}
	}
	return parallel, nil
}

// stampSpin claims a lock word's page and remembers the word so
// runParallel can pre-materialize its backing chunk (concurrent first
// stores into one 64-KB chunk would otherwise race on materialization).
func (r *epochRunner) stampSpin(node int, a simm.Addr) (conflict bool) {
	r.spinAddrs = append(r.spinAddrs, a)
	return r.pages.claim(uint64(a)>>simm.PageShift, int32(node))
}

// runParallel executes the current window speculatively and reports
// whether it committed. On false every side effect has been rolled
// back and the caller re-runs the window serially.
func (r *epochRunner) runParallel(e2 int64) bool {
	mem := r.e.mem
	for _, a := range r.spinAddrs {
		mem.Store32(a, mem.Load32(a)) // identity store: materialize the chunk
	}
	for _, p := range r.inWin {
		r.snaps[p.id] = procSnap{
			clock:    p.clock,
			bd:       p.bd,
			inSync:   p.inSync,
			spinning: p.spinning,
			spinAddr: p.spinAddr,
			head:     r.bufs[p.id].head,
		}
		if r.shadows[p.id] == nil {
			r.shadows[p.id] = machine.NewShadow(r.e.mach, p.id)
		}
		r.panics[p.id] = nil
	}
	r.startWorkers()
	r.wg.Add(len(r.inWin) - 1)
	for _, p := range r.inWin[1:] {
		r.tasks <- shadowTask{p: p, e2: e2}
	}
	r.runShadow(r.inWin[0], e2)
	r.wg.Wait()
	for _, p := range r.inWin {
		if v := r.panics[p.id]; v != nil {
			panic(v)
		}
	}
	if !r.exitClockTie() {
		for i := range r.winShadows {
			r.winShadows[i] = nil
		}
		for _, p := range r.inWin {
			r.winShadows[p.id] = r.shadows[p.id]
		}
		if machine.CommitWindow(r.e.mach, r.winShadows, r.pagesFn) {
			for _, p := range r.inWin {
				r.memLogs[p.id] = r.memLogs[p.id][:0]
			}
			return true
		}
	}
	for _, p := range r.inWin {
		r.shadows[p.id].Rollback()
		lg := r.memLogs[p.id]
		for i := len(lg) - 1; i >= 0; i-- {
			mem.Store32(lg[i].addr, lg[i].old)
		}
		r.memLogs[p.id] = lg[:0]
		s := &r.snaps[p.id]
		p.clock = s.clock
		p.bd = s.bd
		p.inSync = s.inSync
		p.spinning = s.spinning
		p.spinAddr = s.spinAddr
		r.bufs[p.id].head = s.head
	}
	return false
}

// exitClockTie reports whether two processors that can still issue
// events leave the window with identical clocks. A committed parallel
// window is followed by a (clock, id)-sorted ring rebuild, and the
// rebuild reproduces the flat driver's scheduler state only when no
// exact tie is outstanding: the flat driver breaks ties in favor of the
// current baton holder, history a rebuild cannot recover. A tie is
// treated as a validation failure and the window re-runs serially,
// where baton state is tracked exactly.
func (r *epochRunner) exitClockTie() bool {
	live := r.tieBuf[:0]
	for _, p := range r.active {
		b := &r.bufs[p.id]
		if b.head >= len(b.evs) && b.eof && !p.spinning {
			continue // retired: will never issue again, ties are moot
		}
		live = append(live, p.clock)
	}
	r.tieBuf = live
	for i := 1; i < len(live); i++ {
		for j := 0; j < i; j++ {
			if live[j] == live[i] {
				return true
			}
		}
	}
	return false
}

func (r *epochRunner) startWorkers() {
	if r.tasks != nil {
		return
	}
	n := r.workers - 1
	if max := len(r.e.procs) - 1; n > max {
		n = max
	}
	tasks := make(chan shadowTask)
	r.tasks = tasks
	for i := 0; i < n; i++ {
		go func() {
			for t := range tasks {
				r.runShadow(t.p, t.e2)
				r.wg.Done()
			}
		}()
	}
}

// runShadow replays one processor's window on its shadow machine: the
// flat driver's exact charge sequences, bounded by e2 — every event and
// spin iteration issues if and only if the processor's clock is still
// below e2, mirroring "p is the (clock, id) minimum while minima stay
// under e2". Panics are captured for the coordinator to re-raise.
func (r *epochRunner) runShadow(p *Proc, e2 int64) {
	defer func() {
		if v := recover(); v != nil {
			r.panics[p.id] = v
		}
	}()
	sh := r.shadows[p.id]
	sh.Begin()
	m := sh.M()
	b := &r.bufs[p.id]
	for {
		if p.spinning {
			for {
				if p.clock >= e2 {
					return // still mid-acquire at the window edge
				}
				sh.SetStepClock(p.clock)
				if r.shadowSpinStep(p, m) {
					p.spinning = false
					break
				}
			}
		}
		if p.clock >= e2 || b.head >= len(b.evs) {
			// Past the edge, or out of events (pre-scan buffered every
			// event issuable before e2, so exhaustion means end of
			// stream or a next event provably at clock >= e2).
			return
		}
		sh.SetStepClock(p.clock)
		ev := &b.evs[b.head]
		b.head++
		switch ev.Kind {
		case ReplayRef:
			p.preAccess()
			if ev.Write {
				p.charge(m.Write(p.id, ev.Addr, ev.Size, p.clock))
			} else {
				p.charge(m.Read(p.id, ev.Addr, ev.Size, p.clock))
			}
		case ReplayBusy:
			p.bd.Busy += uint64(ev.N)
			p.clock += ev.N
		case ReplaySpinAcquire:
			p.spinning, p.spinAddr = true, ev.Addr
		case ReplaySpinRelease:
			r.shadowSpinRelease(p, m, ev.Addr)
		case ReplayOp:
			panic("sched: lock-manager op reached a speculative window")
		}
	}
}

// shadowSpinStep is flatSpinStep against the shadow machine, with the
// winning store journaled for rollback.
func (r *epochRunner) shadowSpinStep(p *Proc, m *machine.Machine) bool {
	a := p.spinAddr
	mem := p.eng.mem
	p.inSync = true
	p.preAccess()
	p.charge(m.Read(p.id, a, 4, p.clock))
	if mem.Load32(a) == 0 {
		p.charge(m.Sync(p.id, a, p.clock))
		if mem.Load32(a) == 0 {
			r.memLogs[p.id] = append(r.memLogs[p.id], memWrite{addr: a, old: 0})
			mem.Store32(a, 1)
			p.inSync = false
			return true
		}
	}
	backoff := p.eng.cfg.SpinBackoff + int64(13*p.id)
	p.clock += backoff
	p.bd.MSync += uint64(backoff)
	return false
}

// shadowSpinRelease is flatSpinRelease against the shadow machine.
func (r *epochRunner) shadowSpinRelease(p *Proc, m *machine.Machine, a simm.Addr) {
	p.inSync = true
	p.charge(m.Sync(p.id, a, p.clock))
	r.memLogs[p.id] = append(r.memLogs[p.id], memWrite{addr: a, old: p.eng.mem.Load32(a)})
	p.eng.mem.Store32(a, 0)
	p.inSync = false
}

// runSerial drives the window [*, e2) with the flat driver's exact
// algorithm over the window buffers: events issue in global (clock, id)
// order, and a processor whose clock reaches e2 pauses — unless a
// lock-manager op is in flight anywhere, in which case every processor
// stays runnable (an op may spin on a lock whose release lies past e2;
// pausing the releaser would deadlock the replay). Windows therefore
// always end with no op in flight.
//
// The ring is NOT rebuilt here: it persists from the previous window
// (or buildRing), because the head may be holding the baton through an
// exact clock tie — the flat driver's tie-break — and a rebuild would
// hand the tie to the lowest id instead.
func (r *epochRunner) runSerial(e2 int64) error {
	e := r.e
	if e.flatCh == nil {
		e.flatCh = make(chan *Proc)
	}
	e.flat = true
	defer func() { e.flat = false }()
	opCount := 0
outer:
	for len(e.ring) > 0 {
		p := e.ring[0]
		if opCount == 0 && p.clock >= e2 {
			break // the minimum runnable clock passed the edge: window over
		}
		if len(e.ring) > 1 {
			p.horizon = e.ring[1].clock
		} else {
			p.horizon = horizonMax
		}
		switch {
		case p.inOp:
			p.park <- struct{}{}
			q := <-e.flatCh
			if q.panicVal != nil {
				panic(q.panicVal)
			}
			if !q.inOp {
				opCount--
			}
			continue
		case p.spinning:
			if p.flatSpinStep() {
				p.spinning = false
			}
		default:
			b := &r.bufs[p.id]
			limit := e2
			if opCount > 0 {
				limit = horizonMax
			}
			for {
				if b.head >= len(b.evs) {
					if b.eof {
						copy(e.ring, e.ring[1:])
						e.ring = e.ring[:len(e.ring)-1]
						continue outer
					}
					got, err := b.refill(r.srcs[p.id])
					if err != nil {
						return err
					}
					if !got {
						copy(e.ring, e.ring[1:])
						e.ring = e.ring[:len(e.ring)-1]
						continue outer
					}
				}
				ev := &b.evs[b.head]
				b.head++
				switch ev.Kind {
				case ReplayRef:
					p.flatRef(ev.Addr, ev.Size, ev.Write)
				case ReplayBusy:
					p.bd.Busy += uint64(ev.N)
					p.clock += ev.N
				case ReplaySpinAcquire:
					p.spinning, p.spinAddr = true, ev.Addr
					continue outer
				case ReplaySpinRelease:
					p.flatSpinRelease(ev.Addr)
				case ReplayOp:
					p.inOp = true
					opCount++
					go func(p *Proc, op func(*Proc)) {
						defer func() {
							p.panicVal = recover()
							p.inOp = false
							e.flatCh <- p
						}()
						<-p.park
						op(p)
					}(p, ev.Op)
					continue outer
				}
				if p.clock > p.horizon || p.clock >= limit {
					break
				}
			}
		}
		if p.clock > p.horizon {
			i := 0
			for i+1 < len(e.ring) && less(e.ring[i+1], p) {
				e.ring[i] = e.ring[i+1]
				i++
			}
			e.ring[i] = p
		}
	}
	return nil
}
