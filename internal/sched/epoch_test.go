package sched

import (
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/simm"
	"repro/internal/stats"
)

// sliceSource returns a ReplaySource over evs that recycles one backing
// array across batches, exercising the driver contract that a batch is
// dead once the next one is requested.
func sliceSource(evs []ReplayEvent, batch int) ReplaySource {
	buf := make([]ReplayEvent, 0, batch)
	i := 0
	return func() ([]ReplayEvent, error) {
		buf = buf[:0]
		for len(buf) < batch && i < len(evs) {
			buf = append(buf, evs[i])
			i++
		}
		return buf, nil
	}
}

type replayResult struct {
	Clocks []int64
	Bds    []stats.CycleBreakdown
	Mach   machine.Stats
}

// runStreams replays the generated streams on a fresh rig and returns
// everything the drivers are required to agree on.
func runStreams(t *testing.T, nodes, workers int, gen func(id int, data, lock simm.Addr) []ReplayEvent) replayResult {
	t.Helper()
	e, data, lock := rig(t, nodes)
	srcs := make([]ReplaySource, nodes)
	for i := range srcs {
		if evs := gen(i, data, lock); evs != nil {
			srcs[i] = sliceSource(evs, 7)
		}
	}
	var err error
	if workers > 1 {
		err = e.RunReplayParallel(srcs, workers)
	} else {
		err = e.RunReplay(srcs)
	}
	if err != nil {
		t.Fatal(err)
	}
	res := replayResult{Mach: *e.Machine().Stats()}
	for _, p := range e.Procs() {
		res.Clocks = append(res.Clocks, p.Clock())
		res.Bds = append(res.Bds, p.Breakdown())
	}
	return res
}

// requireEqual replays gen's streams flat and parallel (at several
// worker counts) and requires identical clocks, breakdowns, and machine
// stats. It returns how many windows committed in parallel across the
// parallel runs, so callers can assert the classification they expect.
func requireEqual(t *testing.T, nodes int, gen func(id int, data, lock simm.Addr) []ReplayEvent) (parallelWindows uint64) {
	t.Helper()
	flat := runStreams(t, nodes, 1, gen)
	for _, w := range []int{2, 8} {
		p0, _, _ := EpochStats()
		par := runStreams(t, nodes, w, gen)
		p1, _, _ := EpochStats()
		parallelWindows += p1 - p0
		if !reflect.DeepEqual(flat, par) {
			t.Errorf("workers=%d: parallel replay diverges from flat\nflat: %+v\npar:  %+v", w, flat, par)
		}
	}
	return parallelWindows
}

// pageStride spaces per-processor working sets onto disjoint pages.
func pageStride(id int, data simm.Addr) simm.Addr {
	return data + simm.Addr(id)*simm.PageSize
}

// TestEpochDisjointRunsParallel: processors touching disjoint pages for
// thousands of cycles must commit at least one speculative window, and
// the result must equal the flat driver's.
func TestEpochDisjointRunsParallel(t *testing.T) {
	gen := func(id int, data, lock simm.Addr) []ReplayEvent {
		var evs []ReplayEvent
		base := pageStride(id, data)
		for k := 0; k < 4000; k++ {
			evs = append(evs, ReplayEvent{
				Kind:  ReplayRef,
				Addr:  base + simm.Addr(k%500)*8,
				Size:  8,
				Write: k%5 == 0,
			})
		}
		return evs
	}
	if got := requireEqual(t, 4, gen); got == 0 {
		t.Error("disjoint-footprint streams committed no parallel window")
	}
}

// TestEpochConflictWriteReadOverlap: a page written by one processor
// and read by its neighbor in the same clock range must force those
// windows serial — and the replay must still equal the flat driver's
// exactly, including the coherence misses the sharing causes.
func TestEpochConflictWriteReadOverlap(t *testing.T) {
	gen := func(id int, data, lock simm.Addr) []ReplayEvent {
		var evs []ReplayEvent
		for k := 0; k < 2000; k++ {
			// Everyone hammers page 0 the whole run: every window sees
			// the write/read overlap.
			evs = append(evs, ReplayEvent{
				Kind:  ReplayRef,
				Addr:  data + simm.Addr(k%100)*8,
				Size:  8,
				Write: id == 0 && k%3 == 0,
			})
		}
		return evs
	}
	if got := requireEqual(t, 4, gen); got != 0 {
		t.Errorf("overlapping-footprint streams committed %d parallel windows, want 0", got)
	}
}

// TestEpochAdjacentWindowHandoff: processor 0 writes a page early and
// goes quiet; processor 1 reads the same page much later. The touches
// land in different windows, so later windows may parallelize, but the
// second processor's reads must still see the coherence state the
// writes left behind (miss classification equality catches any skew).
func TestEpochAdjacentWindowHandoff(t *testing.T) {
	gen := func(id int, data, lock simm.Addr) []ReplayEvent {
		var evs []ReplayEvent
		if id == 0 {
			for k := 0; k < 300; k++ {
				evs = append(evs, ReplayEvent{Kind: ReplayRef, Addr: data + simm.Addr(k%64)*8, Size: 8, Write: true})
			}
			evs = append(evs, ReplayEvent{Kind: ReplayBusy, N: 1 << 20})
			for k := 0; k < 2000; k++ {
				evs = append(evs, ReplayEvent{Kind: ReplayRef, Addr: pageStride(2, data) + simm.Addr(k%64)*8, Size: 8})
			}
		} else {
			evs = append(evs, ReplayEvent{Kind: ReplayBusy, N: 1 << 18})
			for k := 0; k < 2000; k++ {
				evs = append(evs, ReplayEvent{Kind: ReplayRef, Addr: data + simm.Addr(k%64)*8, Size: 8})
			}
		}
		return evs
	}
	requireEqual(t, 2, gen)
}

// TestEpochLockOpForcesSerial: a window containing a lock-manager op
// never speculates (the op runs arbitrary live code), and op-heavy
// streams still replay byte-identically.
func TestEpochLockOpForcesSerial(t *testing.T) {
	gen := func(id int, data, lock simm.Addr) []ReplayEvent {
		var evs []ReplayEvent
		base := pageStride(id, data)
		for k := 0; k < 1500; k++ {
			evs = append(evs, ReplayEvent{Kind: ReplayRef, Addr: base + simm.Addr(k%64)*8, Size: 8})
			if k%40 == 0 {
				evs = append(evs, ReplayEvent{Kind: ReplayOp, Op: func(p *Proc) {
					p.Busy(17)
					p.Read64(pageStride(p.id, data))
				}})
			}
		}
		return evs
	}
	if got := requireEqual(t, 4, gen); got != 0 {
		t.Errorf("op-bearing streams committed %d parallel windows, want 0", got)
	}
}

// TestEpochSingleToucherSpins: processors spinning on their own private
// locks stay parallel-eligible (the lock page is stamped like any page,
// and a single toucher cannot contend), and the MSync attribution must
// match the flat driver's.
func TestEpochSingleToucherSpins(t *testing.T) {
	gen := func(id int, data, lock simm.Addr) []ReplayEvent {
		var evs []ReplayEvent
		word := pageStride(id, data) + 512
		for k := 0; k < 1200; k++ {
			evs = append(evs, ReplayEvent{Kind: ReplaySpinAcquire, Addr: word})
			evs = append(evs, ReplayEvent{Kind: ReplayRef, Addr: pageStride(id, data) + simm.Addr(k%64)*8, Size: 8, Write: k%7 == 0})
			evs = append(evs, ReplayEvent{Kind: ReplaySpinRelease, Addr: word})
		}
		return evs
	}
	if got := requireEqual(t, 4, gen); got == 0 {
		t.Error("private-lock streams committed no parallel window")
	}
}

// TestEpochSharedSpinForcesSerial: two processors acquiring the same
// spinlock collide on its page, forcing serial windows; the contended
// handoffs (spin iterations, release invalidations) must replay exactly.
func TestEpochSharedSpinForcesSerial(t *testing.T) {
	gen := func(id int, data, lock simm.Addr) []ReplayEvent {
		var evs []ReplayEvent
		for k := 0; k < 600; k++ {
			evs = append(evs, ReplayEvent{Kind: ReplaySpinAcquire, Addr: lock})
			evs = append(evs, ReplayEvent{Kind: ReplayRef, Addr: data + simm.Addr(k%32)*8, Size: 8, Write: true})
			evs = append(evs, ReplayEvent{Kind: ReplaySpinRelease, Addr: lock})
			evs = append(evs, ReplayEvent{Kind: ReplayBusy, N: 200})
		}
		return evs
	}
	if got := requireEqual(t, 2, gen); got != 0 {
		t.Errorf("shared-lock streams committed %d parallel windows, want 0", got)
	}
}

// TestEpochZeroLengthEpoch: empty streams, nil sources, and zero-cost
// events (Busy 0) must neither wedge the window loop nor perturb the
// result.
func TestEpochZeroLengthEpoch(t *testing.T) {
	gen := func(id int, data, lock simm.Addr) []ReplayEvent {
		switch id {
		case 0:
			return nil // idle processor: nil source
		case 1:
			return []ReplayEvent{} // empty stream: immediate EOF
		case 2:
			// Zero-cost events only: the clock never advances.
			return []ReplayEvent{{Kind: ReplayBusy, N: 0}, {Kind: ReplayBusy, N: 0}}
		default:
			var evs []ReplayEvent
			for k := 0; k < 500; k++ {
				evs = append(evs, ReplayEvent{Kind: ReplayRef, Addr: pageStride(3, data) + simm.Addr(k%64)*8, Size: 8})
			}
			return evs
		}
	}
	requireEqual(t, 4, gen)
}

// TestEpochUnevenEOF: one stream ends orders of magnitude before the
// other, so the runner crosses from two-processor windows into the
// single-stream fast path mid-replay.
func TestEpochUnevenEOF(t *testing.T) {
	gen := func(id int, data, lock simm.Addr) []ReplayEvent {
		n := 50
		if id == 0 {
			n = 5000
		}
		var evs []ReplayEvent
		for k := 0; k < n; k++ {
			evs = append(evs, ReplayEvent{Kind: ReplayRef, Addr: pageStride(id, data) + simm.Addr(k%64)*8, Size: 8, Write: k%9 == 0})
		}
		return evs
	}
	requireEqual(t, 2, gen)
}

// fuzzStreams decodes a fuzz corpus into op-free replay streams for two
// processors: refs anywhere in the shared region, busy charges, and
// spins on per-processor private lock words (private so a malformed
// corpus cannot encode a deadlock).
func fuzzStreams(raw []byte, data simm.Addr) [][]ReplayEvent {
	const nodes = 2
	streams := make([][]ReplayEvent, nodes)
	held := make([]bool, nodes)
	lockWord := func(id int) simm.Addr { return data + simm.Addr(id)*16 }
	for i := 0; i+3 < len(raw); i += 4 {
		id := int(raw[i]) % nodes
		off := simm.Addr(raw[i+1]) | simm.Addr(raw[i+2])<<8
		switch raw[i+3] % 8 {
		case 0, 1, 2, 3:
			size := 1 << (raw[i+3] % 4) // 1, 2, 4, 8 bytes
			if uint64(off)+uint64(size) > 1<<16 {
				off = 1<<16 - simm.Addr(size)
			}
			streams[id] = append(streams[id], ReplayEvent{
				Kind: ReplayRef, Addr: data + off, Size: size, Write: raw[i+1]%3 == 0,
			})
		case 4, 5:
			streams[id] = append(streams[id], ReplayEvent{Kind: ReplayBusy, N: int64(off % 700)})
		case 6:
			if !held[id] {
				held[id] = true
				streams[id] = append(streams[id], ReplayEvent{Kind: ReplaySpinAcquire, Addr: lockWord(id)})
			}
		case 7:
			if held[id] {
				held[id] = false
				streams[id] = append(streams[id], ReplayEvent{Kind: ReplaySpinRelease, Addr: lockWord(id)})
			}
		}
	}
	for id, h := range held {
		if h {
			streams[id] = append(streams[id], ReplayEvent{Kind: ReplaySpinRelease, Addr: lockWord(id)})
		}
	}
	return streams
}

// eventPages appends every page an event can touch during replay.
func eventPages(ev *ReplayEvent, pages []uint64) []uint64 {
	switch ev.Kind {
	case ReplayRef:
		pg := uint64(ev.Addr) >> simm.PageShift
		pages = append(pages, pg)
		if lpg := (uint64(ev.Addr) + uint64(ev.Size) - 1) >> simm.PageShift; lpg != pg {
			pages = append(pages, lpg)
		}
	case ReplaySpinAcquire, ReplaySpinRelease:
		pages = append(pages, uint64(ev.Addr)>>simm.PageShift)
	}
	return pages
}

// FuzzEpochFootprint pins the pre-scan's soundness invariant: whenever
// a window is classified parallel-eligible, the pages stamped for each
// processor must be a superset of the pages its events actually touch
// before the window edge. The oracle runs the same window serially and
// checks every consumed event's pages against the claim table. The
// whole-stream replay is also checked flat-vs-parallel for equality.
func FuzzEpochFootprint(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 1, 200, 4, 6, 0, 7, 1, 7, 1, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 1, 0, 16, 1, 0, 9, 9, 6, 0, 2, 2, 7, 1, 1, 1, 4})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		if len(raw) > 4096 {
			raw = raw[:4096]
		}
		mkSrcs := func(data simm.Addr) []ReplaySource {
			streams := fuzzStreams(raw, data)
			srcs := make([]ReplaySource, len(streams))
			for i := range streams {
				srcs[i] = sliceSource(streams[i], 5)
			}
			return srcs
		}

		// Footprint superset check on the first window.
		e, data, _ := rig(t, 2)
		srcs := mkSrcs(data)
		r := &epochRunner{
			e:       e,
			srcs:    srcs,
			workers: 2,
			bufs:    make([]winBuf, 2),
			memLogs: make([][]memWrite, 2),
		}
		r.pages.init()
		for _, p := range e.Procs() {
			p.started, p.done = true, false
			p.spinning, p.inOp = false, false
			r.active = append(r.active, p)
		}
		e2 := int64(1 + int(raw[0])*64)
		parallel, err := r.prescan(e2)
		if err != nil {
			t.Fatal(err)
		}
		heads := []int{r.bufs[0].head, r.bufs[1].head}
		r.buildRing() // runSerial expects the persistent ring to exist
		if err := r.runSerial(e2); err != nil {
			t.Fatal(err)
		}
		if parallel {
			for id := range heads {
				for k := heads[id]; k < r.bufs[id].head; k++ {
					for _, pg := range eventPages(&r.bufs[id].evs[k], nil) {
						if r.pages.ownerOf(pg) != int32(id) {
							t.Fatalf("proc %d touched page %#x before e2=%d, but pre-scan did not stamp it (event %d)",
								id, pg, e2, k)
						}
					}
				}
			}
		}

		// Whole-stream equality, flat vs parallel.
		ef, dataF, _ := rig(t, 2)
		if err := ef.RunReplay(mkSrcs(dataF)); err != nil {
			t.Fatal(err)
		}
		ep, dataP, _ := rig(t, 2)
		if err := ep.RunReplayParallel(mkSrcs(dataP), 2); err != nil {
			t.Fatal(err)
		}
		for i := range ef.Procs() {
			if ef.Procs()[i].Clock() != ep.Procs()[i].Clock() {
				t.Fatalf("proc %d: flat clock %d != parallel clock %d",
					i, ef.Procs()[i].Clock(), ep.Procs()[i].Clock())
			}
			if !reflect.DeepEqual(ef.Procs()[i].Breakdown(), ep.Procs()[i].Breakdown()) {
				t.Fatalf("proc %d: breakdowns diverge", i)
			}
		}
		if !reflect.DeepEqual(ef.Machine().Stats(), ep.Machine().Stats()) {
			t.Fatal("machine stats diverge")
		}
	})
}
